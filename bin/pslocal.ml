(* pslocal — command-line front end.

   Subcommands:
     gen-graph       generate a graph (edge-list format on stdout or file)
     gen-hypergraph  generate a hypergraph
     reduce          run the Theorem 1.1 reduction on a hypergraph
     verify          check a multicoloring file against a hypergraph
     mis             run the MIS algorithm zoo on a graph
     decompose       ball-carving network decomposition of a graph
     serve           long-running solve service (JSON line protocol)
     cache           inspect / clear a persistent solved-instance cache *)

open Cmdliner

module H = Ps_hypergraph.Hypergraph
module G = Ps_graph.Graph
module Mc = Ps_cfc.Multicolor

(* ------------------------------------------------------------------ *)
(* Shared arguments *)

let seed_arg =
  let doc = "Random seed (all randomness in pslocal is seeded)." in
  Arg.(value & opt int 0 & info [ "seed" ] ~docv:"SEED" ~doc)

let output_arg =
  let doc = "Output file (stdout when omitted)." in
  Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc)

let trace_arg =
  let doc =
    "Record a telemetry trace (spans, counters, gauges) and dump it as \
     JSON lines to $(docv) after the run ($(b,-) for stdout).  Implies \
     what setting $(b,PSLOCAL_TRACE) does: the instrumented code paths \
     start recording."
  in
  Arg.(
    value
    & opt ~vopt:(Some "-") (some string) None
    & info [ "trace" ] ~docv:"FILE" ~doc)

(* Run [f] with telemetry per the [--trace] flag, dumping afterwards.
   The flag enables recording; PSLOCAL_TRACE alone also records, but
   only --trace dumps the result anywhere. *)
let with_trace trace f =
  (match trace with Some _ -> Ps_util.Telemetry.set_enabled true | None -> ());
  let result = f () in
  (match trace with
  | None -> ()
  | Some "-" -> print_string (Ps_util.Telemetry.to_json_lines ())
  | Some path ->
      Ps_util.Telemetry.write_file path;
      Logs.app (fun m -> m "telemetry trace written to %s" path));
  result

let json_arg =
  let doc =
    "Emit the result as one JSON line in the solve server's response \
     schema (see $(b,pslocal serve)) instead of human-readable tables."
  in
  Arg.(value & flag & info [ "json" ] ~doc)

(* --cache[=DIR] / --no-cache, shared by the solve commands and serve.
   [--cache] alone enables the in-memory tiers; [--cache=DIR] adds the
   persistent tier (which is what makes one-shot invocations warm). *)
let cache_arg =
  let doc =
    "Enable the solved-instance cache.  With $(docv), entries also \
     persist under that directory (created on first store), so repeated \
     invocations over the same instance are served from disk.  One-shot \
     commands default to no cache unless $(b,PSLOCAL_CACHE_DIR) is set; \
     $(b,serve) caches in memory by default."
  in
  Arg.(
    value
    & opt ~vopt:(Some "") (some string) None
    & info [ "cache" ] ~docv:"DIR" ~doc)

let no_cache_arg =
  let doc =
    "Disable the solved-instance cache (overrides $(b,--cache) and \
     $(b,PSLOCAL_CACHE_DIR))."
  in
  Arg.(value & flag & info [ "no-cache" ] ~doc)

let cache_env_dir () =
  match Sys.getenv_opt "PSLOCAL_CACHE_DIR" with
  | Some d when d <> "" -> Some d
  | _ -> None

let make_cache dir =
  Ps_cache.Cache.create
    ~config:{ Ps_cache.Cache.default_config with dir }
    ()

(* One-shot commands: cache off unless --cache[=DIR] is given or
   PSLOCAL_CACHE_DIR is set; --no-cache always wins. *)
let oneshot_cache ~cache ~no_cache =
  if no_cache then None
  else
    match cache with
    | Some "" -> Some (make_cache None)
    | Some d -> Some (make_cache (Some d))
    | None -> (
        match cache_env_dir () with
        | Some d -> Some (make_cache (Some d))
        | None -> None)

(* One-shot commands share the server's encoders, so `pslocal X --json`
   and the served method X produce byte-identical result objects. *)
let print_json_result result =
  print_endline
    (Ps_server.Protocol.response_to_line
       (Ps_server.Protocol.ok_response ~id:Ps_server.Json.Null result))

let write_out output text =
  match output with
  | None -> print_string text
  | Some path ->
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> output_string oc text)

(* Multicoloring file format: one line per vertex, "v: c1 c2 ...". *)
let multicoloring_to_text (mc : Mc.t) =
  let buf = Buffer.create 256 in
  Array.iteri
    (fun v colors ->
      Buffer.add_string buf
        (Printf.sprintf "%d: %s\n" v
           (String.concat " " (List.map string_of_int colors))))
    mc;
  Buffer.contents buf

let multicoloring_of_file n path =
  let ic = open_in path in
  let mc = Array.make n [] in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      In_channel.input_all ic
      |> String.split_on_char '\n'
      |> List.iter (fun line ->
             let line = String.trim line in
             if line <> "" then
               match String.split_on_char ':' line with
               | [ v; colors ] ->
                   let v = int_of_string (String.trim v) in
                   if v < 0 || v >= n then
                     failwith "multicoloring: vertex out of range";
                   mc.(v) <-
                     String.split_on_char ' ' colors
                     |> List.filter (( <> ) "")
                     |> List.map int_of_string
                     |> List.sort_uniq compare
               | _ -> failwith "multicoloring: expected \"v: c1 c2 ...\""));
  mc

(* ------------------------------------------------------------------ *)
(* gen-graph *)

let gen_graph family n p rows cols degree scale edges seed output =
  let rng = Ps_util.Rng.create seed in
  match family with
  | "rmat" | "huge-gnp" ->
      (* Streaming families: edges flow straight from the generator
         through Gio.write_edges_file's buffered sink — the graph is
         never materialized, so instance size is bounded by disk, not
         the heap.  That rules out stdout's write_out path (which takes
         one big string), hence the mandatory -o. *)
      let path =
        match output with
        | Some path -> path
        | None ->
            failwith
              (Printf.sprintf "%s streams to a file; pass -o FILE" family)
      in
      let nv, m, iter =
        match family with
        | "rmat" ->
            ( 1 lsl scale,
              edges,
              fun f -> Ps_graph.Gen.iter_rmat rng ~scale ~edges f )
        | _ ->
            (* The header promises an exact edge count, so run the
               deterministic G(n,p) stream twice from the same seed:
               first to count, then to emit.  Memory stays O(1). *)
            let count = ref 0 in
            Ps_graph.Gen.iter_gnp (Ps_util.Rng.create seed) n p (fun _ _ ->
                incr count);
            (n, !count, fun f -> Ps_graph.Gen.iter_gnp rng n p f)
      in
      Ps_graph.Gio.write_edges_file path ~n:nv ~m (fun add ->
          iter (fun u v -> add u v));
      Logs.app (fun k -> k "streamed %d vertices, %d edge lines to %s" nv m path)
  | _ ->
      let g =
        match family with
        | "ring" -> Ps_graph.Gen.ring n
        | "path" -> Ps_graph.Gen.path n
        | "complete" -> Ps_graph.Gen.complete n
        | "star" -> Ps_graph.Gen.star n
        | "grid" -> Ps_graph.Gen.grid rows cols
        | "gnp" -> Ps_graph.Gen.gnp rng n p
        | "tree" -> Ps_graph.Gen.random_tree rng n
        | "regular" -> Ps_graph.Gen.random_regular_ish rng n degree
        | "interval" ->
            Ps_graph.Gen.unit_interval rng n (float_of_int n /. 4.0)
        | other -> failwith (Printf.sprintf "unknown graph family %S" other)
      in
      write_out output (Ps_graph.Gio.to_edge_list g);
      Logs.app (fun m -> m "generated %a" G.pp g)

let gen_graph_cmd =
  let family =
    let doc =
      "Family: ring, path, complete, star, grid, gnp, tree, regular, \
       interval; streaming (require -o): rmat, huge-gnp."
    in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FAMILY" ~doc)
  in
  let n =
    Arg.(value & opt int 32 & info [ "n" ] ~doc:"Vertex count (gnp, huge-gnp).")
  in
  let p =
    Arg.(
      value & opt float 0.1
      & info [ "p" ] ~doc:"Edge probability (gnp, huge-gnp).")
  in
  let rows = Arg.(value & opt int 8 & info [ "rows" ] ~doc:"Grid rows.") in
  let cols = Arg.(value & opt int 8 & info [ "cols" ] ~doc:"Grid columns.") in
  let degree =
    Arg.(value & opt int 3 & info [ "d" ] ~doc:"Degree (regular).")
  in
  let scale =
    Arg.(
      value & opt int 16
      & info [ "scale" ] ~doc:"R-MAT scale: $(b,2^scale) vertices (rmat).")
  in
  let edges =
    Arg.(
      value & opt int 1_000_000
      & info [ "edges" ]
          ~doc:
            "Edge lines to emit (rmat); duplicates collapse when the file \
             is read back.")
  in
  Cmd.v
    (Cmd.info "gen-graph" ~doc:"Generate a graph in edge-list format.")
    Term.(
      const gen_graph $ family $ n $ p $ rows $ cols $ degree $ scale $ edges
      $ seed_arg $ output_arg)

(* ------------------------------------------------------------------ *)
(* gen-hypergraph *)

let gen_hypergraph family n m k eps min_len max_len seed output =
  let rng = Ps_util.Rng.create seed in
  let h =
    match family with
    | "uniform" -> Ps_hypergraph.Hgen.uniform_random rng ~n ~m ~k
    | "almost-uniform" ->
        Ps_hypergraph.Hgen.almost_uniform_random rng ~n ~m ~k ~eps
    | "intervals" ->
        Ps_hypergraph.Hgen.random_intervals rng ~n ~m ~min_len ~max_len
    | "blocks" -> Ps_hypergraph.Hgen.disjoint_blocks ~blocks:m ~size:k
    | "sunflower" ->
        Ps_hypergraph.Hgen.sunflower ~n_petals:m ~core:k ~petal:k
    | other -> failwith (Printf.sprintf "unknown hypergraph family %S" other)
  in
  write_out output (Ps_hypergraph.Hio.to_text h);
  Logs.app (fun msg -> msg "generated %a" H.pp h)

let gen_hypergraph_cmd =
  let family =
    let doc =
      "Family: uniform, almost-uniform, intervals, blocks, sunflower."
    in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FAMILY" ~doc)
  in
  let n = Arg.(value & opt int 48 & info [ "n" ] ~doc:"Vertex count.") in
  let m = Arg.(value & opt int 40 & info [ "m" ] ~doc:"Edge count.") in
  let k = Arg.(value & opt int 4 & info [ "k" ] ~doc:"Edge size.") in
  let eps =
    Arg.(value & opt float 0.5 & info [ "eps" ] ~doc:"Almost-uniform slack.")
  in
  let min_len =
    Arg.(value & opt int 2 & info [ "min-len" ] ~doc:"Min interval length.")
  in
  let max_len =
    Arg.(value & opt int 8 & info [ "max-len" ] ~doc:"Max interval length.")
  in
  Cmd.v
    (Cmd.info "gen-hypergraph" ~doc:"Generate a hypergraph.")
    Term.(
      const gen_hypergraph $ family $ n $ m $ k $ eps $ min_len $ max_len
      $ seed_arg $ output_arg)

(* ------------------------------------------------------------------ *)
(* reduce *)

(* The server's registry is the single source of solver names. *)
let solver_of_name name =
  match Ps_server.Protocol.solver_of_name name with
  | Some s -> s
  | None -> failwith (Printf.sprintf "unknown solver %S" name)

let solver_names_doc =
  "greedy, caro-wei, caro-wei-x8, adversarial, exact, clique-removal, \
   portfolio"

let presolve_arg =
  let doc =
    "Kernelization presolve: $(b,kernel) shrinks the instance with exact \
     reductions (degree-0/1, folding, simplicial, domination) before the \
     solver runs and lifts the answer back; $(b,none) runs the raw solver."
  in
  Arg.(
    value
    & opt
        (enum
           [ ("kernel", (`Kernel : Ps_maxis.Kernel.choice)); ("none", `None) ])
        `Kernel
    & info [ "presolve" ] ~docv:"PRESOLVE" ~doc)

let reduce input solver presolve k engine seed verbose trace json output cache
    no_cache =
  if verbose then
    Logs.Src.set_level Ps_core.Reduction.log_src (Some Logs.Debug);
  let h = Ps_hypergraph.Hio.read_file input in
  let k_choice =
    match k with
    | None -> Ps_core.Pipeline.From_conservative
    | Some k -> Ps_core.Pipeline.Fixed k
  in
  (* The cache's warm tier assumes the incremental engine; with the
     rebuild oracle selected we solve uncached rather than key entries
     by engine. *)
  let cache =
    match engine with
    | `Incremental -> oneshot_cache ~cache ~no_cache
    | `Rebuild -> None
  in
  let result =
    with_trace trace (fun () ->
        match cache with
        | None ->
            Ps_core.Pipeline.solve ~seed ~k:k_choice ~engine ~presolve
              ~solver:(solver_of_name solver) h
        | Some c ->
            let s = solver_of_name solver in
            let effective_name =
              (Ps_maxis.Kernel.apply presolve s).Ps_maxis.Approx.name
            in
            let result =
              Ps_cache.Cache.solve c ~k ~presolve ~solver:s
                ~solver_name:effective_name ~seed h
            in
            (* Same contract as Pipeline.solve: a failed certificate is
               an error, not a result. *)
            if not result.Ps_core.Pipeline.certificate.Ps_core.Certify.all_ok
            then
              failwith
                (Format.asprintf "reduce: certificate failed: %a"
                   Ps_core.Certify.pp result.Ps_core.Pipeline.certificate);
            result)
  in
  if json then begin
    print_json_result
      (Ps_server.Protocol.reduce_result ~detail:false result);
    match output with
    | None -> ()
    | Some _ ->
        write_out output
          (multicoloring_to_text
             result.Ps_core.Pipeline.reduction.Ps_core.Reduction.multicoloring)
  end
  else begin
  let r = result.Ps_core.Pipeline.reduction in
  let t =
    Ps_util.Table.create
      [ "phase"; "|E_i|"; "|V(Gk)|"; "|I_i|"; "happy"; "lambda" ]
  in
  List.iter
    (fun (p : Ps_core.Reduction.phase_record) ->
      Ps_util.Table.add_row t
        [ string_of_int p.phase;
          string_of_int p.edges_before;
          string_of_int p.conflict_vertices;
          string_of_int p.is_size;
          string_of_int p.newly_happy;
          Ps_util.Table.cell_ratio p.lambda_effective ])
    r.Ps_core.Reduction.phases;
  Ps_util.Table.print ~title:(Printf.sprintf "reduction of %s" input) t;
  Format.printf "certificate: %a@." Ps_core.Certify.pp
    result.Ps_core.Pipeline.certificate;
  let _, compacted_colors =
    Ps_cfc.Multicolor.compact r.Ps_core.Reduction.multicoloring
  in
  Format.printf "colors (compacted): %d@." compacted_colors;
  match output with
  | None -> ()
  | Some _ ->
      write_out output
        (multicoloring_to_text r.Ps_core.Reduction.multicoloring);
      Logs.app (fun m -> m "multicoloring written")
  end

let reduce_cmd =
  let input =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"HYPERGRAPH" ~doc:"Hypergraph file.")
  in
  let solver =
    let doc = "MaxIS solver: " ^ solver_names_doc ^ "." in
    Arg.(value & opt string "greedy" & info [ "solver" ] ~doc)
  in
  let k =
    Arg.(
      value
      & opt (some int) None
      & info [ "k" ] ~doc:"Palette size per phase (default: derived).")
  in
  let engine =
    let doc =
      "Phase engine: $(b,incremental) compacts one conflict graph across \
       phases, $(b,rebuild) reconstructs it each phase (the differential \
       oracle).  Both produce bit-identical results."
    in
    Arg.(
      value
      & opt
          (enum
             [ ("incremental", (`Incremental : Ps_core.Reduction.engine));
               ("rebuild", `Rebuild) ])
          `Incremental
      & info [ "engine" ] ~docv:"ENGINE" ~doc)
  in
  let verbose =
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Per-phase debug log.")
  in
  Cmd.v
    (Cmd.info "reduce"
       ~doc:
         "Conflict-free multicoloring via the Theorem 1.1 reduction \
          (iterated MaxIS approximation).")
    Term.(
      const reduce $ input $ solver $ presolve_arg $ k $ engine $ seed_arg
      $ verbose $ trace_arg $ json_arg $ output_arg $ cache_arg $ no_cache_arg)

(* ------------------------------------------------------------------ *)
(* verify *)

let verify hypergraph coloring =
  let h = Ps_hypergraph.Hio.read_file hypergraph in
  let mc = multicoloring_of_file (H.n_vertices h) coloring in
  let happy = Mc.count_happy h mc in
  Format.printf "%d / %d edges happy; %d colors in use@." happy (H.n_edges h)
    (Mc.total_colors mc);
  if happy = H.n_edges h then begin
    Format.printf "conflict-free: yes@.";
    exit 0
  end
  else begin
    Format.printf "conflict-free: NO@.";
    exit 1
  end

let verify_cmd =
  let hypergraph =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"HYPERGRAPH" ~doc:"Hypergraph file.")
  in
  let coloring =
    Arg.(
      required
      & pos 1 (some file) None
      & info [] ~docv:"COLORING" ~doc:"Multicoloring file (\"v: c1 c2 ...\").")
  in
  Cmd.v
    (Cmd.info "verify" ~doc:"Verify a conflict-free multicoloring.")
    Term.(const verify $ hypergraph $ coloring)

(* ------------------------------------------------------------------ *)
(* mis *)

(* One-shot graph requests go through the cache's opaque tier in --json
   mode only: the stored payload is the rendered result object, so a hit
   prints byte-identically to a fresh render.  The human-readable table
   paths need the live structures and stay uncached. *)
let cached_graph_json cache ~kind ~solver_name ~seed g render =
  match cache with
  | None -> render ()
  | Some c -> (
      match
        Ps_cache.Cache.find_graph_result c ~kind ~solver_name ~seed g
      with
      | Some payload -> (
          match Ps_server.Json.parse payload with
          | Ok j -> j
          | Error _ -> render ())
      | None ->
          let j = render () in
          Ps_cache.Cache.store_graph_result c ~kind ~solver_name ~seed g
            (Ps_server.Json.to_string j);
          j)

(* [--solver NAME] switches from the algorithm zoo to one MaxIS solver
   with the kernelization front end: reduce, solve on the kernel, lift,
   and certify (independent + maximal) on the original graph.  The
   portfolio races its entries and reports every lane.  Uncached: the
   point of this path is measuring the solve, not replaying it. *)
let mis_with_solver g ~input ~name ~presolve ~seed ~json =
  let module Is = Ps_maxis.Independent_set in
  let module Kn = Ps_maxis.Kernel in
  let module Json = Ps_server.Json in
  let rng = Ps_util.Rng.create seed in
  let set, solver_name, entries, kstats =
    if String.equal name "portfolio" then begin
      let o = Ps_maxis.Portfolio.race rng g in
      ( o.Ps_maxis.Portfolio.set,
        "portfolio (winner: " ^ o.Ps_maxis.Portfolio.winner ^ ")",
        o.Ps_maxis.Portfolio.sizes,
        Some o.Ps_maxis.Portfolio.kernel_stats )
    end
    else begin
      let base = solver_of_name name in
      let effective = (Kn.apply presolve base).Ps_maxis.Approx.name in
      match presolve with
      | `Kernel when not (Kn.is_presolved base) ->
          let r = Kn.reduce g in
          let ks = base.Ps_maxis.Approx.solve rng (Kn.graph r) in
          Is.verify_exn (Kn.graph r) ks;
          let set = Kn.lift r ks in
          (set, effective, [ (effective, Is.size set) ], Some (Kn.stats r))
      | _ ->
          let set = base.Ps_maxis.Approx.solve rng g in
          Is.verify_exn g set;
          (set, effective, [ (effective, Is.size set) ], None)
    end
  in
  let diags = Ps_check.Check_set.maximal_independent g set in
  let certified = match diags with [] -> true | _ -> false in
  let kernel_json (st : Kn.stats) =
    Json.Obj
      [ ("original_vertices", Json.Int st.Kn.original_vertices);
        ("original_edges", Json.Int st.Kn.original_edges);
        ("kernel_vertices", Json.Int st.Kn.kernel_vertices);
        ("kernel_edges", Json.Int st.Kn.kernel_edges);
        ("isolated", Json.Int st.Kn.isolated);
        ("pendants", Json.Int st.Kn.pendants);
        ("folds", Json.Int st.Kn.folds);
        ("simplicial", Json.Int st.Kn.simplicial);
        ("dominated", Json.Int st.Kn.dominated) ]
  in
  if json then
    print_json_result
      (Json.Obj
         ([ ("solver", Json.Str solver_name);
            ("size", Json.Int (Is.size set));
            ("certified", Json.Bool certified);
            ( "entries",
              Json.List
                (List.map
                   (fun (n, sz) ->
                     Json.Obj
                       [ ("solver", Json.Str n); ("size", Json.Int sz) ])
                   entries) ) ]
         @
         match kstats with
         | Some st -> [ ("kernel", kernel_json st) ]
         | None -> []))
  else begin
    let t =
      Ps_util.Table.create
        ~aligns:[ Ps_util.Table.Left; Ps_util.Table.Right ]
        [ "solver"; "size" ]
    in
    List.iter
      (fun (n, sz) -> Ps_util.Table.add_row t [ n; string_of_int sz ])
      entries;
    Ps_util.Table.print ~title:(Printf.sprintf "MaxIS on %s" input) t;
    (match kstats with
    | Some st ->
        Format.printf "kernel: %d -> %d vertices, %d -> %d edges@."
          st.Kn.original_vertices st.Kn.kernel_vertices st.Kn.original_edges
          st.Kn.kernel_edges
    | None -> ());
    Format.printf "winner: %s (size %d)@." solver_name (Is.size set);
    Format.printf "certified (independent + maximal): %b@." certified
  end;
  if not certified then exit 1

let mis input solver presolve seed trace json cache no_cache =
  with_trace trace @@ fun () ->
  let g = Ps_graph.Gio.read_file input in
  match solver with
  | Some name -> mis_with_solver g ~input ~name ~presolve ~seed ~json
  | None ->
  if json then
    print_json_result
      (cached_graph_json
         (oneshot_cache ~cache ~no_cache)
         ~kind:Ps_cache.Cache.Mis
         ~solver_name:
           (Ps_server.Protocol.mis_algo_name Ps_server.Protocol.Mis_all)
         ~seed g
         (fun () ->
           Ps_server.Protocol.mis_result
             (Ps_server.Service.mis_entries ~seed Ps_server.Protocol.Mis_all
                g)))
  else
  let t =
    Ps_util.Table.create
      ~aligns:[ Ps_util.Table.Left; Ps_util.Table.Right; Ps_util.Table.Left ]
      [ "algorithm"; "size"; "cost" ]
  in
  let module Is = Ps_maxis.Independent_set in
  let greedy = Ps_maxis.Greedy.min_degree g in
  Ps_util.Table.add_row t
    [ "greedy min-degree"; string_of_int (Is.size greedy); "centralized" ];
  let luby_flags, luby_stats = Ps_local.Luby.run ~seed g in
  Ps_util.Table.add_row t
    [ "luby (LOCAL)";
      string_of_int (Is.size (Is.of_indicator luby_flags));
      Printf.sprintf "%d rounds" luby_stats.Ps_local.Network.rounds ];
  let slocal_flags, _ = Ps_slocal.Greedy_mis.run ~seed g in
  Ps_util.Table.add_row t
    [ "greedy (SLOCAL)";
      string_of_int (Is.size (Is.of_indicator slocal_flags));
      "locality 1" ];
  let derand = Ps_slocal.Derandomize.mis g in
  Ps_util.Table.add_row t
    [ "derandomized (LOCAL, det.)";
      string_of_int
        (Is.size (Is.of_indicator derand.Ps_slocal.Derandomize.outputs));
      Printf.sprintf "%d rounds" derand.Ps_slocal.Derandomize.simulated_rounds ];
  Ps_util.Table.print ~title:(Printf.sprintf "MIS on %s" input) t

let mis_cmd =
  let input =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"GRAPH" ~doc:"Graph file (edge list).")
  in
  let solver =
    let doc =
      "Run one MaxIS solver (with kernelization and certification) instead \
       of the algorithm zoo: " ^ solver_names_doc ^ "."
    in
    Arg.(value & opt (some string) None & info [ "solver" ] ~docv:"SOLVER" ~doc)
  in
  Cmd.v
    (Cmd.info "mis" ~doc:"Run the MIS algorithm zoo on a graph.")
    Term.(
      const mis $ input $ solver $ presolve_arg $ seed_arg $ trace_arg
      $ json_arg $ cache_arg $ no_cache_arg)

(* ------------------------------------------------------------------ *)
(* decompose *)

let decompose input trace json cache no_cache =
  let code =
    with_trace trace (fun () ->
        let g = Ps_graph.Gio.read_file input in
        if json then begin
          let result =
            cached_graph_json
              (oneshot_cache ~cache ~no_cache)
              ~kind:Ps_cache.Cache.Decompose ~solver_name:"ball-carving"
              ~seed:0 g
              (fun () ->
                let d = Ps_slocal.Decomposition.ball_carving g in
                let check = Ps_slocal.Decomposition.verify g d in
                let ok = Ps_slocal.Decomposition.check_all check in
                Ps_server.Protocol.decompose_result d ~verified:ok)
          in
          print_json_result result;
          (* The exit code mirrors the payload so a cache hit agrees
             with the fresh render it replayed. *)
          match Ps_server.Json.member "verified" result with
          | Some (Ps_server.Json.Bool true) -> 0
          | _ -> 1
        end
        else begin
          let d = Ps_slocal.Decomposition.ball_carving g in
          let check = Ps_slocal.Decomposition.verify g d in
          let ok = Ps_slocal.Decomposition.check_all check in
          Format.printf
            "%a@.clusters=%d colors=%d max_radius=%d@.verified: %a@." G.pp g
            d.Ps_slocal.Decomposition.n_clusters
            d.Ps_slocal.Decomposition.n_colors
            d.Ps_slocal.Decomposition.max_radius
            Ps_slocal.Decomposition.pp_check check;
          if ok then 0 else 1
        end)
  in
  exit code

let decompose_cmd =
  let input =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"GRAPH" ~doc:"Graph file (edge list).")
  in
  Cmd.v
    (Cmd.info "decompose"
       ~doc:"Ball-carving (log n, log n) network decomposition.")
    Term.(
      const decompose $ input $ trace_arg $ json_arg $ cache_arg
      $ no_cache_arg)

(* ------------------------------------------------------------------ *)
(* matching *)

let matching input seed =
  let g = Ps_graph.Gio.read_file input in
  let t =
    Ps_util.Table.create
      ~aligns:[ Ps_util.Table.Left; Ps_util.Table.Right; Ps_util.Table.Left ]
      [ "algorithm"; "edges"; "cost" ]
  in
  let greedy = Ps_graph.Matching.greedy g in
  Ps_util.Table.add_row t
    [ "greedy"; string_of_int (Ps_graph.Matching.size greedy); "centralized" ];
  let outputs, stats = Ps_local.Matching_local.run ~seed g in
  let local = Ps_local.Matching_local.to_partner_array outputs in
  Ps_util.Table.add_row t
    [ "proposal (LOCAL)";
      string_of_int (Ps_graph.Matching.size local);
      Printf.sprintf "%d rounds" stats.Ps_local.Network.rounds ];
  let slocal, sstats = Ps_slocal.Greedy_matching.run ~seed g in
  Ps_util.Table.add_row t
    [ "greedy (SLOCAL)";
      string_of_int (Ps_graph.Matching.size slocal);
      Printf.sprintf "locality %d" sstats.Ps_slocal.Slocal.locality ];
  Ps_util.Table.print ~title:(Printf.sprintf "maximal matching on %s" input) t;
  let cover = Ps_maxis.Vertex_cover.of_matching g greedy in
  Format.printf "2-approx vertex cover from greedy matching: %d vertices@."
    (Ps_util.Bitset.cardinal cover)

let matching_cmd =
  let input =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"GRAPH" ~doc:"Graph file (edge list).")
  in
  Cmd.v
    (Cmd.info "matching" ~doc:"Maximal matchings in all three models.")
    Term.(const matching $ input $ seed_arg)

(* ------------------------------------------------------------------ *)
(* cf-color: direct conflict-free coloring *)

let cf_color input algorithm output =
  let h = Ps_hypergraph.Hio.read_file input in
  let f =
    match algorithm with
    | "ruler" -> Ps_cfc.Cf_greedy.ruler h
    | "conservative" -> Ps_cfc.Cf_greedy.conservative h
    | other -> failwith (Printf.sprintf "unknown CF algorithm %S" other)
  in
  Ps_cfc.Cf_coloring.verify_exn h f;
  Format.printf "conflict-free with %d colors (max color %d)@."
    (Ps_cfc.Cf_coloring.num_colors f)
    (Ps_cfc.Cf_coloring.max_color f);
  match output with
  | None -> ()
  | Some _ ->
      write_out output
        (multicoloring_to_text (Ps_cfc.Multicolor.of_single f));
      Logs.app (fun m -> m "coloring written")

let cf_color_cmd =
  let input =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"HYPERGRAPH" ~doc:"Hypergraph file.")
  in
  let algorithm =
    Arg.(
      value & opt string "conservative"
      & info [ "algo" ] ~doc:"ruler (intervals only) or conservative.")
  in
  Cmd.v
    (Cmd.info "cf-color"
       ~doc:"Direct conflict-free coloring (no reduction).")
    Term.(const cf_color $ input $ algorithm $ output_arg)

(* ------------------------------------------------------------------ *)
(* set-cover *)

let set_cover input =
  let h = Ps_hypergraph.Hio.read_file input in
  let greedy = Ps_hypergraph.Set_cover.greedy h in
  Ps_hypergraph.Set_cover.verify_exn h greedy;
  Format.printf "greedy cover: %d sets (of %d)@." (List.length greedy)
    (H.n_edges h);
  (match Ps_hypergraph.Set_cover.cover_number_within ~budget:2_000_000 h with
  | Some opt -> Format.printf "optimum: %d sets@." opt
  | None -> Format.printf "optimum: (instance too large for exact search)@.");
  Format.printf "chosen: %s@."
    (String.concat " " (List.map string_of_int greedy))

let set_cover_cmd =
  let input =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"HYPERGRAPH" ~doc:"Hypergraph file.")
  in
  Cmd.v
    (Cmd.info "set-cover" ~doc:"Greedy and exact set cover.")
    Term.(const set_cover $ input)

(* ------------------------------------------------------------------ *)
(* bfs *)

let bfs input root =
  let g = Ps_graph.Gio.read_file input in
  let result, stats = Ps_local.Congest.bfs_tree ~root g in
  Format.printf
    "BFS from %d: %d rounds, max message %d bits (CONGEST: %s)@." root
    stats.Ps_local.Congest.network.Ps_local.Network.rounds
    stats.Ps_local.Congest.max_message_bits
    (if Ps_local.Congest.bandwidth_ok ~n:(G.n_vertices g) stats then "yes"
     else "no");
  Array.iteri
    (fun v d ->
      Format.printf "  %d: dist=%d parent=%d@." v d
        result.Ps_local.Congest.parent.(v))
    result.Ps_local.Congest.distance

let bfs_cmd =
  let input =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"GRAPH" ~doc:"Graph file (edge list).")
  in
  let root =
    Arg.(value & opt int 0 & info [ "root" ] ~doc:"Root vertex.")
  in
  Cmd.v
    (Cmd.info "bfs" ~doc:"CONGEST BFS tree with bandwidth accounting.")
    Term.(const bfs $ input $ root)

(* ------------------------------------------------------------------ *)
(* audit *)

(* Vertex-set certificate file: whitespace-separated ids, '#' comments. *)
let ids_of_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      In_channel.input_all ic
      |> String.split_on_char '\n'
      |> List.filter (fun line -> not (String.starts_with ~prefix:"#" line))
      |> String.concat " "
      |> String.split_on_char ' '
      |> List.concat_map (String.split_on_char '\t')
      |> List.filter (fun tok -> tok <> "")
      |> List.map (fun tok ->
             match int_of_string_opt tok with
             | Some v -> v
             | None ->
                 failwith
                   (Printf.sprintf "%s: %S is not a vertex id" path tok)))

let audit hypergraph graph coloring is_file ds_file solver k seed json =
  let module D = Ps_check.Diagnostic in
  let finish ~checks diags =
    if json then
      print_json_result (Ps_server.Protocol.check_result ~checks diags)
    else begin
      List.iter (fun d -> Format.printf "%a@." D.pp d) diags;
      match diags with
      | [] -> Format.printf "audit OK (%s)@." (String.concat ", " checks)
      | ds ->
          Format.printf "audit FAILED: %d diagnostic(s) (%s)@."
            (List.length ds)
            (String.concat ", " checks)
    end;
    exit (match diags with [] -> 0 | _ :: _ -> 1)
  in
  match (hypergraph, graph) with
  | None, None | Some _, Some _ ->
      failwith "audit: pass exactly one of HYPERGRAPH or --graph"
  | Some path, None -> begin
      let h = Ps_hypergraph.Hio.read_file path in
      match coloring with
      | Some cpath ->
          (* Certify a claimed coloring — the referee mode. *)
          let mc = multicoloring_of_file (H.n_vertices h) cpath in
          finish ~checks:[ "multicoloring" ]
            (Ps_check.Check_cfc.multicoloring h mc)
      | None ->
          (* Run the Theorem 1.1 pipeline, then deep-audit its own run:
             conflict-freeness, per-phase decay, ρ and k·ρ budgets. *)
          let k_choice =
            match k with
            | None -> Ps_core.Pipeline.From_conservative
            | Some k -> Ps_core.Pipeline.Fixed k
          in
          let result =
            Ps_core.Pipeline.solve_unchecked ~seed ~k:k_choice
              ~solver:(solver_of_name solver) h
          in
          let diags = Ps_core.Certify.diagnostics result.reduction in
          if not json then
            Format.printf "reduction: %d phases, %d colors, λmax=%.2f@."
              result.reduction.Ps_core.Reduction.total_phases
              result.reduction.Ps_core.Reduction.colors_used
              (Ps_check.Check_phase.lambda_max
                 (Ps_core.Certify.phases_for_check result.reduction));
          finish ~checks:[ "multicoloring"; "phase-audit" ] diags
    end
  | None, Some path ->
      let g = Ps_graph.Gio.read_file path in
      let csr = Ps_check.Check_graph.csr g in
      let is_checks, is_diags =
        match is_file with
        | None -> ([], [])
        | Some f ->
            ( [ "independent_set" ],
              Ps_check.Check_set.independent_list g (ids_of_file f) )
      in
      let ds_checks, ds_diags =
        match ds_file with
        | None -> ([], [])
        | Some f ->
            ( [ "dominating_set" ],
              Ps_check.Check_set.dominating_list g (ids_of_file f) )
      in
      finish
        ~checks:(("csr" :: is_checks) @ ds_checks)
        (csr @ is_diags @ ds_diags)

let audit_cmd =
  let hypergraph =
    Arg.(
      value
      & pos 0 (some file) None
      & info [] ~docv:"HYPERGRAPH"
          ~doc:
            "Hypergraph file (Hio).  Without $(b,--coloring), runs the \
             reduction and deep-audits its own output; with it, certifies \
             the given multicoloring.")
  in
  let graph =
    Arg.(
      value
      & opt (some file) None
      & info [ "graph" ] ~docv:"FILE"
          ~doc:
            "Audit a graph (Gio edge list) instead: CSR well-formedness, \
             plus any vertex-set certificates given below.")
  in
  let coloring =
    Arg.(
      value
      & opt (some file) None
      & info [ "coloring" ] ~docv:"FILE"
          ~doc:"Multicoloring file (\"v: c1 c2 ...\") to certify against \
                HYPERGRAPH.")
  in
  let is_file =
    Arg.(
      value
      & opt (some file) None
      & info [ "is" ] ~docv:"FILE"
          ~doc:"Independent-set certificate (whitespace-separated ids).")
  in
  let ds_file =
    Arg.(
      value
      & opt (some file) None
      & info [ "ds" ] ~docv:"FILE"
          ~doc:"Dominating-set certificate (whitespace-separated ids).")
  in
  let solver =
    Arg.(
      value & opt string "greedy"
      & info [ "solver" ]
          ~doc:"MaxIS solver for the self-audit run (see $(b,reduce)).")
  in
  let k =
    Arg.(
      value
      & opt (some int) None
      & info [ "k" ] ~doc:"Palette size per phase (default: derived).")
  in
  let doc =
    "Deep invariant audit with positioned diagnostics.  Exit 0 when every \
     certifier passes, 1 with one diagnostic per violation otherwise \
     (machine-readable with $(b,--json), same schema as the served \
     $(b,check) method)."
  in
  Cmd.v (Cmd.info "audit" ~doc)
    Term.(
      const audit $ hypergraph $ graph $ coloring $ is_file $ ds_file
      $ solver $ k $ seed_arg $ json_arg)

(* ------------------------------------------------------------------ *)
(* serve *)

let serve socket domains queue timeout_ms shards binary metrics_socket
    quota_rps quota_burst shard_child trace cache no_cache =
  let ( let* ) = Result.bind in
  let fail fmt = Printf.ksprintf (fun m -> Error (`Msg m)) fmt in
  (* Flag validation first: misconfiguration is a clean one-line error,
     never a raised exception (pinned by the CLI contract tests). *)
  let* () =
    match domains with
    | Some d when d < 1 -> fail "serve: --domains must be positive (got %d)" d
    | _ -> Ok ()
  in
  let* () =
    match queue with
    | Some q when q < 1 -> fail "serve: --queue must be positive (got %d)" q
    | _ -> Ok ()
  in
  (* The two serve paths ship different queue depths: the shard tier's
     batched dispatch amortises a deep queue (see
     {!Ps_shard.Shard.default_queue_capacity}); the legacy per-request
     signalling path keeps the engine's conservative 64. *)
  let tier_serve =
    shards > 1 || binary
    || Option.is_some quota_rps
    || Option.is_some shard_child
    || Option.is_some metrics_socket
  in
  let queue =
    match queue with
    | Some q -> q
    | None ->
        if tier_serve then Ps_shard.Shard.default_queue_capacity
        else Ps_server.Engine.default_config.Ps_server.Engine.queue_capacity
  in
  let* () =
    if shards < 1 then fail "serve: --shards must be positive (got %d)" shards
    else Ok ()
  in
  let* () =
    match quota_rps with
    | Some r when r <= 0.0 ->
        fail "serve: --quota-rps must be positive (got %g)" r
    | _ -> Ok ()
  in
  let* () =
    match quota_burst with
    | Some b when b < 1.0 ->
        fail "serve: --quota-burst must be at least 1 (got %g)" b
    | Some _ when Option.is_none quota_rps ->
        fail "serve: --quota-burst needs --quota-rps"
    | _ -> Ok ()
  in
  let needs_socket what =
    match socket with
    | Some path -> Ok path
    | None -> fail "serve: %s requires --socket PATH" what
  in
  let framing =
    if binary then Ps_shard.Frame.Binary else Ps_shard.Frame.Json_lines
  in
  let quota =
    Option.map
      (fun rate ->
        { Ps_shard.Shard.rate;
          burst = Option.value quota_burst ~default:(Float.max 1.0 rate) })
      quota_rps
  in
  (* Unlike the one-shots, the server caches by default: the in-memory
     tiers pay off across the requests of one long-running process.
     Built only in the processes that run an engine (the router-only
     front process never solves). *)
  let engine_config () =
    let cache =
      if no_cache then None
      else
        let dir =
          match cache with
          | Some "" -> None
          | Some d -> Some d
          | None -> cache_env_dir ()
        in
        Some (make_cache dir)
    in
    { Ps_server.Engine.domains =
        (match domains with
        | Some d -> d
        | None -> Ps_server.Engine.default_config.Ps_server.Engine.domains);
      queue_capacity = queue;
      default_timeout_ms = timeout_ms;
      cache }
  in
  let shard_config index =
    { Ps_shard.Shard.engine = engine_config ();
      framing;
      max_message_bytes = Ps_server.Protocol.default_max_bytes;
      quota;
      index }
  in
  (* Children are fork+exec re-invocations of this binary (never a bare
     fork: the parent runs threads).  Flags that shape the engine and
     the protocol are forwarded; --trace is not (N children dumping to
     a shared stdout would interleave). *)
  let spawn_shard index shard_socket =
    let tail =
      [ "serve"; "--socket"; shard_socket;
        "--shard-child"; string_of_int index;
        "--queue"; string_of_int queue ]
      @ (match domains with
        | Some d -> [ "--domains"; string_of_int d ]
        | None -> [])
      @ (match timeout_ms with
        | Some t -> [ "--timeout-ms"; string_of_int t ]
        | None -> [])
      @ (if binary then [ "--binary" ] else [])
      @ (match quota_rps with
        | Some r -> [ "--quota-rps"; Printf.sprintf "%g" r ]
        | None -> [])
      @ (match quota_burst with
        | Some b -> [ "--quota-burst"; Printf.sprintf "%g" b ]
        | None -> [])
      @
      if no_cache then [ "--no-cache" ]
      else
        match cache with
        | Some "" -> [ "--cache" ]
        | Some d -> [ "--cache=" ^ d ]
        | None -> []
    in
    Unix.create_process Sys.executable_name
      (Array.of_list (Sys.executable_name :: tail))
      Unix.stdin Unix.stdout Unix.stderr
  in
  let wrap f =
    match with_trace trace f with
    | () -> Ok ()
    | exception Failure msg -> Error (`Msg msg)
  in
  match shard_child with
  | Some index ->
      (* Hidden child mode: one shard process behind its own socket. *)
      let* path = needs_socket "--shard-child" in
      wrap (fun () ->
          Ps_shard.Shard.serve ~config:(shard_config index) ~path ())
  | None ->
      if shards > 1 || Option.is_some metrics_socket then
        let* front =
          needs_socket
            (if shards > 1 then "--shards" else "--metrics-socket")
        in
        wrap (fun () ->
            Ps_shard.Tier.run ~spawn:spawn_shard ~front
              { Ps_shard.Tier.shards;
                framing;
                metrics_socket;
                ready_timeout_s = 10.0 })
      else if binary || Option.is_some quota then
        (* Single process, but the request path needs the shard layers
           (framing / quota), so serve through Ps_shard without a
           supervisor or router. *)
        let* path =
          needs_socket (if binary then "--binary" else "--quota-rps")
        in
        wrap (fun () -> Ps_shard.Shard.serve ~config:(shard_config 0) ~path ())
      else
        wrap (fun () ->
            let config =
              { Ps_server.Server.default_config with engine = engine_config () }
            in
            match socket with
            | None -> Ps_server.Server.serve_stdio ~config ()
            | Some path -> Ps_server.Server.serve_unix_socket ~config ~path ())

let serve_cmd =
  let socket =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:
            "Listen on a Unix-domain socket at $(docv) instead of serving \
             stdin/stdout.  A stale socket file left by a previous run is \
             replaced.")
  in
  let domains =
    Arg.(
      value
      & opt (some int) None
      & info [ "domains" ] ~docv:"N"
          ~doc:
            "Worker pool size (defaults to min(4, available cores)).  Each \
             worker is an OCaml domain solving one request at a time.")
  in
  let queue =
    Arg.(
      value
      & opt (some int) None
      & info [ "queue" ] ~docv:"N"
          ~doc:
            "Bounded request-queue capacity.  When full, new requests are \
             shed immediately with an $(b,overloaded) error response.  \
             Defaults to 64 on the legacy path and 4096 on the shard tier \
             ($(b,--shards)/$(b,--binary)/$(b,--quota-rps)), whose batched \
             dispatch absorbs deep queues.")
  in
  let timeout_ms =
    Arg.(
      value
      & opt (some int) None
      & info [ "timeout-ms" ] ~docv:"MS"
          ~doc:
            "Default per-request deadline, measured from enqueue (queue \
             wait counts).  Requests may override it with a $(b,timeout_ms) \
             field.  No deadline if omitted.")
  in
  let shards =
    Arg.(
      value
      & opt int 1
      & info [ "shards" ] ~docv:"N"
          ~doc:
            "Serve through $(docv) solver processes behind one front \
             socket: a supervisor spawns and restarts them, connections \
             are sharded round-robin with failover.  Requires \
             $(b,--socket).")
  in
  let binary =
    Arg.(
      value
      & flag
      & info [ "binary" ]
          ~doc:
            "Speak length-prefixed binary frames instead of JSON lines \
             (same requests and responses, no text parsing on the hot \
             path).  Requires $(b,--socket); JSON remains the default \
             compatibility protocol.")
  in
  let metrics_socket =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-socket" ] ~docv:"PATH"
          ~doc:
            "Expose Prometheus text metrics over HTTP at $(docv) (scrape \
             with $(b,curl --unix-socket)): per-shard and aggregate \
             engine counters, latency quantiles, batching/quota/router \
             counters, shard liveness and restarts.")
  in
  let quota_rps =
    Arg.(
      value
      & opt (some float) None
      & info [ "quota-rps" ] ~docv:"R"
          ~doc:
            "Per-tenant token-bucket admission: each tenant \
             ($(b,params.tenant); absent shares the anonymous bucket) \
             refills at $(docv) requests/second.  Over-quota requests \
             are answered $(b,overloaded) before touching the queue.")
  in
  let quota_burst =
    Arg.(
      value
      & opt (some float) None
      & info [ "quota-burst" ] ~docv:"B"
          ~doc:
            "Token-bucket capacity per tenant (defaults to the \
             $(b,--quota-rps) rate, at least 1).")
  in
  let shard_child =
    Arg.(
      value
      & opt (some int) None
      & info [ "shard-child" ] ~docv:"INDEX"
          ~doc:
            "Internal: run as shard child $(docv) of a $(b,--shards) \
             supervisor (spawned automatically; not for direct use).")
  in
  let doc =
    "Long-running solve service speaking newline-delimited JSON (requests \
     in, responses out, correlated by $(b,id)) or length-prefixed binary \
     frames ($(b,--binary)).  Methods: reduce, mis, decompose, certify, \
     check, ping, stats.  Solved instances are cached (content-addressed, \
     certificate-audited; see $(b,--cache)).  $(b,--shards N) scales to a \
     supervised multi-process tier behind one socket, with per-tenant \
     quotas ($(b,--quota-rps)) and a Prometheus endpoint \
     ($(b,--metrics-socket)).  Drains in-flight jobs on SIGTERM, SIGINT \
     or EOF before exiting."
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(
      term_result
        (const serve $ socket $ domains $ queue $ timeout_ms $ shards
       $ binary $ metrics_socket $ quota_rps $ quota_burst $ shard_child
       $ trace_arg $ cache_arg $ no_cache_arg))

(* ------------------------------------------------------------------ *)
(* cache *)

let cache_admin action dir json =
  let dir =
    match (dir, cache_env_dir ()) with
    | Some d, _ -> d
    | None, Some d -> d
    | None, None ->
        failwith "cache: no directory (give --dir or set PSLOCAL_CACHE_DIR)"
  in
  match action with
  | `Stats ->
      let entries, bytes = Ps_cache.Cache.dir_stats dir in
      if json then
        print_endline
          (Ps_server.Json.to_string
             (Ps_server.Json.Obj
                [ ("dir", Ps_server.Json.Str dir);
                  ("entries", Ps_server.Json.Int entries);
                  ("bytes", Ps_server.Json.Int bytes);
                  ( "engine_version",
                    Ps_server.Json.Str Ps_cache.Cache.engine_version ) ]))
      else
        Format.printf "%s: %d entries, %d bytes (engine version %s)@." dir
          entries bytes Ps_cache.Cache.engine_version
  | `List ->
      let entries = Ps_cache.Cache.dir_list dir in
      if json then
        print_endline
          (Ps_server.Json.to_string
             (Ps_server.Json.List
                (List.map
                   (fun (key, bytes) ->
                     Ps_server.Json.Obj
                       [ ("key", Ps_server.Json.Str key);
                         ("bytes", Ps_server.Json.Int bytes) ])
                   entries)))
      else begin
        let t =
          Ps_util.Table.create
            ~aligns:[ Ps_util.Table.Left; Ps_util.Table.Right ]
            [ "key"; "bytes" ]
        in
        List.iter
          (fun (key, bytes) ->
            Ps_util.Table.add_row t [ key; string_of_int bytes ])
          entries;
        Ps_util.Table.print ~title:(Printf.sprintf "cache %s" dir) t
      end
  | `Clear ->
      let removed = Ps_cache.Cache.dir_clear dir in
      if json then
        print_endline
          (Ps_server.Json.to_string
             (Ps_server.Json.Obj
                [ ("dir", Ps_server.Json.Str dir);
                  ("removed", Ps_server.Json.Int removed) ]))
      else Format.printf "%s: removed %d entries@." dir removed

let cache_cmd =
  let action =
    let doc =
      "$(b,stats) (entry count and byte size), $(b,list) (one row per \
       entry with its key), or $(b,clear) (delete every entry file)."
    in
    Arg.(
      value
      & pos 0 (enum [ ("stats", `Stats); ("list", `List); ("clear", `Clear) ])
          `Stats
      & info [] ~docv:"ACTION" ~doc)
  in
  let dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "dir" ] ~docv:"DIR"
          ~doc:
            "Cache directory to inspect (defaults to \
             $(b,PSLOCAL_CACHE_DIR)).  This is the persistent tier \
             written by $(b,--cache=DIR); a running server's in-memory \
             tiers are inspected via its $(b,stats) method instead.")
  in
  let doc =
    "Inspect or clear a persistent solved-instance cache directory."
  in
  Cmd.v (Cmd.info "cache" ~doc)
    Term.(const cache_admin $ action $ dir $ json_arg)

(* ------------------------------------------------------------------ *)

let main_cmd =
  let doc =
    "P-SLOCAL-completeness of maximum independent set approximation — \
     executable reproduction."
  in
  Cmd.group
    (Cmd.info "pslocal" ~version:"1.0.0" ~doc)
    [ gen_graph_cmd; gen_hypergraph_cmd; reduce_cmd; verify_cmd; mis_cmd;
      decompose_cmd; matching_cmd; cf_color_cmd; set_cover_cmd; bfs_cmd;
      audit_cmd; serve_cmd; cache_cmd ]

let () =
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level (Some Logs.App);
  exit (Cmd.eval main_cmd)
