(* Tests for the LOCAL-model simulator and its algorithms. *)

module G = Ps_graph.Graph
module Gen = Ps_graph.Gen
module Network = Ps_local.Network
module Gather = Ps_local.Gather
module Luby = Ps_local.Luby
module CL = Ps_local.Coloring_local
module Is = Ps_maxis.Independent_set
module Rng = Ps_util.Rng

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Network simulator mechanics, tested with tiny custom algorithms. *)

(* Every node halts immediately with its own id: 0 rounds. *)
module Echo_id = struct
  type state = unit
  type message = unit
  type output = int

  let name = "echo-id"
  let init (ctx : Network.node_ctx) = Network.Halt ctx.id
  let step _ _ _ = assert false
end

(* Every node computes the sum of ids within distance r by flooding
   partial sums... simplified: count rounds then halt with its degree. *)
module Degree_after_k (K : sig
  val rounds : int
end) =
struct
  type state = int (* rounds remaining *)
  type message = unit
  type output = int

  let name = "degree-after-k"

  let init (ctx : Network.node_ctx) =
    if K.rounds = 0 then Network.Halt ctx.degree
    else Network.Continue (K.rounds, ())

  let step (ctx : Network.node_ctx) remaining _inbox =
    if remaining <= 1 then Network.Halt ctx.degree
    else Network.Continue (remaining - 1, ())
end

(* Collect neighbor ids: one round of communication. *)
module Neighbor_ids = struct
  type state = unit
  type message = int
  type output = int list

  let name = "neighbor-ids"

  let init (ctx : Network.node_ctx) = Network.Continue ((), ctx.id)

  let step _ () inbox =
    Network.Halt
      (Array.to_list inbox |> List.filter_map Fun.id |> List.sort compare)
end

let test_network_zero_rounds () =
  let module R = Network.Run (Echo_id) in
  let outputs, stats = R.run (Gen.ring 5) in
  Alcotest.(check (array int)) "ids" [| 0; 1; 2; 3; 4 |] outputs;
  check "rounds" 0 stats.rounds;
  check "messages" 0 stats.messages_sent

let test_network_round_counting () =
  let module A = Degree_after_k (struct
    let rounds = 7
  end) in
  let module R = Network.Run (A) in
  let g = Gen.ring 6 in
  let outputs, stats = R.run g in
  check "rounds" 7 stats.rounds;
  Array.iter (fun d -> check "degree" 2 d) outputs

let test_network_message_counting () =
  let module A = Degree_after_k (struct
    let rounds = 3
  end) in
  let module R = Network.Run (A) in
  let g = Gen.ring 6 in
  let _, stats = R.run g in
  (* 6 nodes x 2 neighbors x 3 rounds of receipt *)
  check "messages" 36 stats.messages_sent

let test_network_neighbor_exchange () =
  let module R = Network.Run (Neighbor_ids) in
  let outputs, stats = R.run (Gen.path 4) in
  check "rounds" 1 stats.rounds;
  Alcotest.(check (list int)) "end node" [ 1 ] outputs.(0);
  Alcotest.(check (list int)) "middle node" [ 0; 2 ] outputs.(1)

let test_network_custom_ids () =
  let module R = Network.Run (Neighbor_ids) in
  let outputs, _ = R.run ~ids:[| 100; 200; 300 |] (Gen.path 3) in
  Alcotest.(check (list int)) "custom ids" [ 100; 300 ] outputs.(1)

let test_network_duplicate_ids_rejected () =
  let module R = Network.Run (Echo_id) in
  Alcotest.check_raises "duplicate" (Invalid_argument
    "Network.run: duplicate id") (fun () ->
      ignore (R.run ~ids:[| 1; 1; 2 |] (Gen.path 3)))

let test_network_round_limit () =
  (* An algorithm that never halts must hit the limit. *)
  let module Forever = struct
    type state = unit
    type message = unit
    type output = unit

    let name = "forever"
    let init _ = Network.Continue ((), ())
    let step _ () _ = Network.Continue ((), ())
  end in
  let module R = Network.Run (Forever) in
  check_bool "limit raised" true
    (try
       ignore (R.run ~max_rounds:10 (Gen.ring 3));
       false
     with Network.Round_limit_exceeded 10 -> true)

let test_network_empty_graph () =
  let module R = Network.Run (Echo_id) in
  let outputs, stats = R.run (G.empty 0) in
  check "no outputs" 0 (Array.length outputs);
  check "rounds" 0 stats.rounds

(* ------------------------------------------------------------------ *)
(* Gather: direct views vs flooding views *)

let test_gather_radius_zero () =
  let views = Gather.direct_views (Gen.ring 5) 0 in
  let v = views.(2) in
  check "center" 2 v.Gather.center;
  Alcotest.(check (list int)) "vertices" [ 2 ] v.Gather.vertices;
  Alcotest.(check (list (pair int int))) "edges" [] v.Gather.edges

let test_gather_radius_one_ring () =
  let views = Gather.direct_views (Gen.ring 6) 1 in
  let v = views.(0) in
  Alcotest.(check (list int)) "ball" [ 0; 1; 5 ] v.Gather.vertices;
  (* edges incident to the 0-ball = edges at 0 *)
  Alcotest.(check (list (pair int int))) "incident edges"
    [ (0, 1); (0, 5) ] v.Gather.edges

let test_gather_flood_matches_direct () =
  let rng = Rng.create 17 in
  List.iter
    (fun g ->
      for r = 0 to 3 do
        let direct = Gather.direct_views g r in
        let flooded, stats = Gather.flood_views g r in
        check "locality respected" r (min r stats.Network.rounds);
        Array.iteri
          (fun v (dv : Gather.view) ->
            let fv = flooded.(v) in
            check "center" dv.Gather.center fv.Gather.center;
            Alcotest.(check (list int))
              "vertices" dv.Gather.vertices fv.Gather.vertices;
            Alcotest.(check (list (pair int int)))
              "edges" dv.Gather.edges fv.Gather.edges)
          direct
      done)
    [ Gen.ring 8; Gen.grid 3 4; Gen.gnp rng 25 0.15; Gen.path 6 ]

let test_gather_flood_round_cost () =
  let _, stats = Gather.flood_views (Gen.ring 8) 3 in
  check "r rounds" 3 stats.Network.rounds

let test_gather_view_graph () =
  let views = Gather.direct_views (Gen.ring 6) 1 in
  let g, back = Gather.view_graph views.(0) in
  check "vertices" 3 (G.n_vertices g);
  check "edges" 2 (G.n_edges g);
  Alcotest.(check (array int)) "ids" [| 0; 1; 5 |] back

let test_gather_whole_graph_at_large_radius () =
  let g = Gen.grid 3 3 in
  let views = Gather.direct_views g 10 in
  let v = views.(4) in
  check "all vertices" 9 (List.length v.Gather.vertices);
  check "all edges" (G.n_edges g) (List.length v.Gather.edges)

(* ------------------------------------------------------------------ *)
(* Luby's MIS *)

let test_luby_is_mis () =
  let rng = Rng.create 23 in
  List.iter
    (fun g ->
      let flags, _ = Luby.run ~seed:5 g in
      let is = Is.of_indicator flags in
      check_bool "independent" true (Is.is_independent g is);
      check_bool "maximal" true (Is.is_maximal g is))
    [ Gen.ring 9;
      Gen.complete 8;
      Gen.grid 5 5;
      Gen.gnp rng 120 0.05;
      Gen.gnp rng 120 0.3;
      G.empty 10;
      Gen.star 12 ]

let test_luby_complete_graph_single_winner () =
  let flags, _ = Luby.run (Gen.complete 10) in
  check "exactly one" 1
    (Array.fold_left (fun a b -> if b then a + 1 else a) 0 flags)

let test_luby_empty_graph_all_in () =
  let flags, stats = Luby.run (G.empty 7) in
  check_bool "all in MIS" true (Array.for_all Fun.id flags);
  check "two rounds" 2 stats.rounds

let test_luby_round_complexity_logarithmic () =
  (* O(log n) w.h.p.: generous constant on a fixed seed keeps this stable. *)
  let rng = Rng.create 31 in
  let g = Gen.gnp rng 400 0.05 in
  let _, stats = Luby.run ~seed:7 g in
  check_bool "rounds small" true (Luby.iterations stats <= 20)

let test_luby_seed_determinism () =
  let g = Gen.gnp (Rng.create 3) 60 0.1 in
  let a, _ = Luby.run ~seed:11 g in
  let b, _ = Luby.run ~seed:11 g in
  Alcotest.(check (array bool)) "same seed same MIS" a b

(* ------------------------------------------------------------------ *)
(* Randomized (Δ+1)-coloring *)

let test_trial_coloring_proper () =
  let rng = Rng.create 41 in
  List.iter
    (fun g ->
      let colors, _ = CL.run ~seed:3 g in
      check_bool "proper" true (Ps_graph.Coloring.is_proper g colors);
      check_bool "Δ+1 colors" true
        (Ps_graph.Coloring.max_color colors <= G.max_degree g))
    [ Gen.ring 9;
      Gen.complete 7;
      Gen.grid 4 6;
      Gen.gnp rng 100 0.08;
      G.empty 5;
      Gen.star 10 ]

let test_trial_coloring_palette_is_local_degree () =
  (* Each vertex's color never exceeds its own degree. *)
  let rng = Rng.create 43 in
  let g = Gen.gnp rng 80 0.1 in
  let colors, _ = CL.run g in
  Array.iteri
    (fun v c -> check_bool "c <= deg(v)" true (c <= G.degree g v))
    colors

let test_trial_coloring_round_complexity () =
  let rng = Rng.create 47 in
  let g = Gen.gnp rng 300 0.05 in
  let _, stats = CL.run ~seed:1 g in
  check_bool "trials small" true (CL.trials stats <= 25)

(* ------------------------------------------------------------------ *)
(* Deterministic coloring: local-maxima peeling *)

module CR = Ps_local.Color_reduction

let test_peeling_proper () =
  let rng = Rng.create 51 in
  List.iter
    (fun g ->
      let colors, _ = CR.local_maxima_coloring g in
      check_bool "proper" true (Ps_graph.Coloring.is_proper g colors);
      check_bool "Δ+1" true
        (Ps_graph.Coloring.max_color colors <= G.max_degree g))
    [ Gen.ring 9; Gen.complete 7; Gen.grid 4 5; Gen.gnp rng 90 0.08;
      G.empty 6; Gen.star 11 ]

let test_peeling_deterministic () =
  let g = Gen.gnp (Rng.create 52) 50 0.1 in
  let a, _ = CR.local_maxima_coloring g in
  let b, _ = CR.local_maxima_coloring g in
  Alcotest.(check (array int)) "no randomness" a b

let test_peeling_adversarial_ids_slow () =
  (* Path with increasing ids: only the top id is ever a local maximum,
     so peeling takes Θ(n) rounds — the deterministic-vs-randomized gap
     the paper opens with. *)
  let n = 40 in
  let g = Gen.path n in
  let _, stats = CR.local_maxima_coloring ~max_rounds:(2 * n) g in
  check_bool "linear rounds" true (stats.Network.rounds >= n / 2)

let test_peeling_good_ids_fast () =
  (* Alternating high/low ids on a path: all even positions are local
     maxima at once, odd ones follow — two waves, O(1) rounds. *)
  let n = 40 in
  let g = Gen.path n in
  let ids = Array.init n (fun i -> if i mod 2 = 0 then n + i else i) in
  let colors, stats = CR.local_maxima_coloring ~ids g in
  check_bool "proper" true (Ps_graph.Coloring.is_proper g colors);
  check_bool "few rounds" true (stats.Network.rounds <= 5)

let test_mis_from_coloring () =
  let rng = Rng.create 53 in
  List.iter
    (fun g ->
      let colors = Ps_graph.Coloring.greedy g in
      let flags, rounds = CR.mis_from_coloring g colors in
      let is = Is.of_indicator flags in
      check_bool "independent" true (Is.is_independent g is);
      check_bool "maximal" true (Is.is_maximal g is);
      check "rounds = classes" (Ps_graph.Coloring.max_color colors + 1)
        rounds)
    [ Gen.ring 10; Gen.grid 5 5; Gen.gnp rng 80 0.1; Gen.complete 6 ]

let test_mis_from_coloring_rejects_improper () =
  let g = Gen.path 3 in
  check_bool "rejects" true
    (try
       ignore (CR.mis_from_coloring g [| 0; 0; 1 |]);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Cole-Vishkin *)

module CV = Ps_local.Cole_vishkin

let test_cv_log_star () =
  check "2" 0 (CV.log_star 2);
  check "4" 1 (CV.log_star 4);
  check "16" 2 (CV.log_star 16);
  check "65536" 3 (CV.log_star 65536)

let test_cv_three_colors_small () =
  let trace = CV.three_color ~ids:[| 5; 0; 9; 2; 7 |] in
  check_bool "proper cycle" true (CV.is_proper_cycle trace.CV.colors);
  Array.iter
    (fun c -> check_bool "in {0,1,2}" true (c >= 0 && c < 3))
    trace.CV.colors

let test_cv_identity_ids () =
  List.iter
    (fun n ->
      let trace = CV.three_color ~ids:(Array.init n (fun i -> i)) in
      check_bool (Printf.sprintf "proper n=%d" n) true
        (CV.is_proper_cycle trace.CV.colors))
    [ 3; 4; 5; 7; 64; 1000 ]

let test_cv_random_large_ids () =
  let rng = Rng.create 54 in
  for _ = 1 to 10 do
    let n = 100 + Rng.int rng 400 in
    let ids = Rng.sample_without_replacement rng n 1_000_000 in
    let trace = CV.three_color ~ids in
    check_bool "proper" true (CV.is_proper_cycle trace.CV.colors);
    (* log* of 10^6 is 4; allow the +O(1) the analysis hides *)
    check_bool "log* iterations" true (trace.CV.cv_iterations <= 8)
  done

let test_cv_rejects_duplicates () =
  check_bool "duplicate ids" true
    (try
       ignore (CV.three_color ~ids:[| 1; 1; 2 |]);
       false
     with Invalid_argument _ -> true);
  check_bool "too short" true
    (try
       ignore (CV.three_color ~ids:[| 1; 2 |]);
       false
     with Invalid_argument _ -> true)

let test_cv_iterations_grow_slowly () =
  (* Doubling n barely moves the iteration count: the log* signature. *)
  let trace n =
    (CV.three_color ~ids:(Array.init n (fun i -> i))).CV.cv_iterations
  in
  check_bool "flat growth" true (trace 100_000 - trace 100 <= 2)

(* ------------------------------------------------------------------ *)
(* Randomized maximal matching *)

module ML = Ps_local.Matching_local
module M = Ps_graph.Matching

let test_matching_local_valid () =
  let rng = Rng.create 71 in
  List.iter
    (fun g ->
      let outputs, _ = ML.run ~seed:2 g in
      let partner = ML.to_partner_array outputs in
      check_bool "maximal matching" true (M.is_maximal_matching g partner))
    [ Gen.ring 9; Gen.complete 8; Gen.grid 4 5; Gen.gnp rng 80 0.08;
      G.empty 6; Gen.star 12; Gen.path 2 ]

let test_matching_local_pairs_consistent () =
  let g = Gen.gnp (Rng.create 72) 50 0.15 in
  let outputs, _ = ML.run ~seed:3 g in
  Array.iteri
    (fun v out ->
      match out with
      | Some p -> (
          match outputs.(p) with
          | Some q -> check "mutual" v q
          | None -> Alcotest.fail "partner claims unmatched")
      | None -> ())
    outputs

let test_matching_local_round_complexity () =
  let g = Gen.gnp (Rng.create 73) 300 0.05 in
  let _, stats = ML.run ~seed:1 g in
  check_bool "O(log n)-ish iterations" true (ML.iterations stats <= 40)

let test_matching_local_determinism () =
  let g = Gen.gnp (Rng.create 74) 40 0.2 in
  let a, _ = ML.run ~seed:9 g in
  let b, _ = ML.run ~seed:9 g in
  check_bool "same matching" true (a = b)

(* ------------------------------------------------------------------ *)
(* CONGEST: BFS and leader election with bandwidth accounting *)

module Congest = Ps_local.Congest

let test_congest_bfs_distances () =
  let rng = Rng.create 81 in
  List.iter
    (fun g ->
      let result, stats = Congest.bfs_tree ~root:0 g in
      Alcotest.(check (array int)) "distances = BFS"
        (Ps_graph.Traverse.bfs_distances g 0)
        result.Congest.distance;
      check_bool "CONGEST bandwidth" true
        (Congest.bandwidth_ok ~n:(G.n_vertices g) stats))
    [ Gen.ring 12; Gen.grid 4 6; Gen.gnp rng 60 0.08; Gen.path 9;
      Gen.balanced_tree 2 4 ]

let test_congest_bfs_parents () =
  let g = Gen.grid 4 4 in
  let result, _ = Congest.bfs_tree ~root:0 g in
  Array.iteri
    (fun v p ->
      if v = 0 then check "root parent" (-1) p
      else begin
        check_bool "parent is a neighbor" true (G.has_edge g v p);
        check "parent one closer" (result.Congest.distance.(v) - 1)
          result.Congest.distance.(p)
      end)
    result.Congest.parent

let test_congest_bfs_unreachable () =
  let g = G.of_edges 4 [ (0, 1) ] in
  let result, _ = Congest.bfs_tree ~root:0 g in
  check "unreached distance" (-1) result.Congest.distance.(2);
  check "unreached parent" (-1) result.Congest.parent.(2)

let test_congest_bfs_round_cost () =
  let g = Gen.path 20 in
  let _, stats = Congest.bfs_tree ~root:0 g in
  (* wave reaches distance 19 in round 19; +1 halting round *)
  check_bool "rounds ~ eccentricity" true
    (stats.Congest.network.Network.rounds <= 21)

let test_congest_aggregate_count () =
  let rng = Rng.create 84 in
  List.iter
    (fun g ->
      let totals, stats = Congest.aggregate ~root:0 g in
      Array.iter (fun t -> check "count = n" (G.n_vertices g) t) totals;
      check_bool "CONGEST bandwidth" true
        (Congest.bandwidth_ok ~n:(G.n_vertices g) stats))
    [ Gen.ring 10; Gen.grid 4 4; Gen.path 7; Gen.star 9;
      Gen.gnp rng 40 0.15 |> fun g ->
      if Ps_graph.Traverse.is_connected g then g else Gen.ring 6 ]

let test_congest_aggregate_sum_of_ids () =
  let g = Gen.grid 3 4 in
  let totals, _ = Congest.aggregate ~value:(fun id -> id) ~root:5 g in
  let expected = 12 * 11 / 2 in
  Array.iter (fun t -> check "sum of ids" expected t) totals

let test_congest_aggregate_disconnected () =
  let g = G.of_edges 5 [ (0, 1); (1, 2) ] in
  let totals, _ = Congest.aggregate ~root:0 g in
  check "component size at root" 3 totals.(0);
  check "component member" 3 totals.(2);
  check "outsider" 0 totals.(3)

let test_congest_aggregate_single () =
  let totals, _ = Congest.aggregate ~root:0 (G.empty 1) in
  check "singleton" 1 totals.(0)

let test_congest_leader () =
  let rng = Rng.create 82 in
  List.iter
    (fun g ->
      let leaders, stats = Congest.leader_elect g in
      Array.iter (fun l -> check "global min" 0 l) leaders;
      check_bool "CONGEST bandwidth" true
        (Congest.bandwidth_ok ~n:(G.n_vertices g) stats))
    [ Gen.ring 10; Gen.grid 3 5; Gen.gnp rng 40 0.2 ]

let test_congest_leader_rejects_disconnected () =
  check_bool "raises" true
    (try
       ignore (Congest.leader_elect (G.of_edges 3 [ (0, 1) ]));
       false
     with Invalid_argument _ -> true)

let test_congest_gather_is_not_congest () =
  (* The r-hop gathering algorithm ships whole subgraphs: its messages
     blow past the O(log n) budget — the reason LOCAL and CONGEST are
     different models.  Measure it via a sized wrapper. *)
  let g = Gen.gnp (Rng.create 83) 40 0.3 in
  let module Sized = struct
    (* flood known edge sets for 3 rounds, as view gathering does *)
    type state = int * (int * int) list
    type message = (int * int) list
    type output = int

    let name = "sized-flood"
    let message_bits edges = 64 + (64 * List.length edges)

    let init (_ : Network.node_ctx) = Network.Continue ((0, []), [])

    let step (ctx : Network.node_ctx) (rounds, known) inbox =
      let known =
        Array.fold_left
          (fun acc msg ->
            match msg with
            | Some edges ->
                List.sort_uniq compare (List.rev_append edges acc)
            | None -> acc)
          known inbox
      in
      let known = List.sort_uniq compare ((ctx.id, ctx.id + 1) :: known) in
      if rounds >= 3 then Network.Halt (List.length known)
      else Network.Continue ((rounds + 1, known), known)
  end in
  let module R = Congest.Run (Sized) in
  let _, stats = R.run g in
  check_bool "exceeds CONGEST bandwidth" false
    (Congest.bandwidth_ok ~n:(G.n_vertices g) stats)

(* ------------------------------------------------------------------ *)
(* Oracle runner: implicit graphs behave exactly like materialized ones *)

let test_oracle_matches_materialized_luby () =
  let rng = Rng.create 55 in
  for _ = 1 to 5 do
    let g = Gen.gnp rng 60 0.1 in
    let direct, direct_stats = Luby.run ~seed:9 g in
    let oracle, oracle_stats =
      Luby.run_oracle ~seed:9 ~n:(G.n_vertices g)
        ~neighbors:(fun v -> G.neighbors g v)
        ()
    in
    Alcotest.(check (array bool)) "same MIS" direct oracle;
    check "same rounds" direct_stats.Network.rounds
      oracle_stats.Network.rounds
  done

(* ------------------------------------------------------------------ *)
(* qcheck properties *)

let arbitrary_gnp =
  QCheck.make
    ~print:(fun (seed, n, p) -> Printf.sprintf "seed=%d n=%d p=%d%%" seed n p)
    QCheck.Gen.(triple (int_bound 500) (int_range 1 40) (int_bound 60))

let graph_of (seed, n, p) =
  Ps_graph.Gen.gnp (Rng.create seed) n (float_of_int p /. 100.0)

let prop_luby_always_mis =
  QCheck.Test.make ~count:60 ~name:"Luby outputs a maximal independent set"
    arbitrary_gnp (fun params ->
      let g = graph_of params in
      let flags, _ = Luby.run ~seed:(Hashtbl.hash params) g in
      let is = Is.of_indicator flags in
      Is.is_independent g is && Is.is_maximal g is)

let prop_trial_coloring_always_proper =
  QCheck.Test.make ~count:60 ~name:"trial coloring is always proper"
    arbitrary_gnp (fun params ->
      let g = graph_of params in
      let colors, _ = CL.run ~seed:(Hashtbl.hash params) g in
      Ps_graph.Coloring.is_proper g colors
      && Ps_graph.Coloring.max_color colors <= G.max_degree g)

let prop_flood_equals_direct =
  QCheck.Test.make ~count:30 ~name:"flooded views equal direct views"
    (QCheck.pair arbitrary_gnp (QCheck.int_bound 3))
    (fun (params, r) ->
      let g = graph_of params in
      let direct = Gather.direct_views g r in
      let flooded, _ = Gather.flood_views g r in
      Array.for_all2
        (fun (a : Gather.view) (b : Gather.view) ->
          a.Gather.center = b.Gather.center
          && a.Gather.vertices = b.Gather.vertices
          && a.Gather.edges = b.Gather.edges)
        direct flooded)

let prop_peeling_proper =
  QCheck.Test.make ~count:60 ~name:"local-maxima coloring always proper"
    arbitrary_gnp (fun params ->
      let g = graph_of params in
      let colors, _ = CR.local_maxima_coloring g in
      Ps_graph.Coloring.is_proper g colors
      && Ps_graph.Coloring.max_color colors <= G.max_degree g)

let prop_cv_proper =
  QCheck.Test.make ~count:60 ~name:"Cole-Vishkin 3-colors any id cycle"
    QCheck.(pair (int_bound 1000) (int_range 3 200))
    (fun (seed, n) ->
      let ids =
        Rng.sample_without_replacement (Rng.create seed) n 100_000
      in
      let trace = CV.three_color ~ids in
      CV.is_proper_cycle trace.CV.colors
      && Array.for_all (fun c -> c < 3) trace.CV.colors)

let prop_congest_bfs_equals_traverse =
  QCheck.Test.make ~count:60 ~name:"CONGEST BFS distances = host-side BFS"
    arbitrary_gnp (fun params ->
      let g = graph_of params in
      if G.n_vertices g = 0 then true
      else
        let result, _ = Congest.bfs_tree ~root:0 g in
        result.Congest.distance = Ps_graph.Traverse.bfs_distances g 0)

let prop_matching_local_valid =
  QCheck.Test.make ~count:60
    ~name:"proposal matching is always a maximal matching" arbitrary_gnp
    (fun params ->
      let g = graph_of params in
      let outputs, _ = ML.run ~seed:(Hashtbl.hash params) g in
      M.is_maximal_matching g (ML.to_partner_array outputs))

let prop_aggregate_counts_component =
  QCheck.Test.make ~count:40
    ~name:"CONGEST aggregation counts the root's component" arbitrary_gnp
    (fun params ->
      let g = graph_of params in
      if G.n_vertices g = 0 then true
      else begin
        let totals, _ = Congest.aggregate ~root:0 g in
        let reached =
          Array.fold_left
            (fun acc d -> if d >= 0 then acc + 1 else acc)
            0
            (Ps_graph.Traverse.bfs_distances g 0)
        in
        totals.(0) = reached
      end)

let props =
  List.map QCheck_alcotest.to_alcotest
    [ prop_luby_always_mis;
      prop_trial_coloring_always_proper;
      prop_flood_equals_direct;
      prop_peeling_proper;
      prop_cv_proper;
      prop_congest_bfs_equals_traverse;
      prop_matching_local_valid;
      prop_aggregate_counts_component ]

let suites =
  [ ( "local.network",
      [ Alcotest.test_case "zero rounds" `Quick test_network_zero_rounds;
        Alcotest.test_case "round counting" `Quick
          test_network_round_counting;
        Alcotest.test_case "message counting" `Quick
          test_network_message_counting;
        Alcotest.test_case "neighbor exchange" `Quick
          test_network_neighbor_exchange;
        Alcotest.test_case "custom ids" `Quick test_network_custom_ids;
        Alcotest.test_case "duplicate ids rejected" `Quick
          test_network_duplicate_ids_rejected;
        Alcotest.test_case "round limit" `Quick test_network_round_limit;
        Alcotest.test_case "empty graph" `Quick test_network_empty_graph ]
    );
    ( "local.gather",
      [ Alcotest.test_case "radius zero" `Quick test_gather_radius_zero;
        Alcotest.test_case "radius one on ring" `Quick
          test_gather_radius_one_ring;
        Alcotest.test_case "flood matches direct" `Quick
          test_gather_flood_matches_direct;
        Alcotest.test_case "flood round cost" `Quick
          test_gather_flood_round_cost;
        Alcotest.test_case "view graph" `Quick test_gather_view_graph;
        Alcotest.test_case "large radius" `Quick
          test_gather_whole_graph_at_large_radius ] );
    ( "local.luby",
      [ Alcotest.test_case "is MIS" `Quick test_luby_is_mis;
        Alcotest.test_case "complete graph" `Quick
          test_luby_complete_graph_single_winner;
        Alcotest.test_case "empty graph" `Quick test_luby_empty_graph_all_in;
        Alcotest.test_case "logarithmic rounds" `Quick
          test_luby_round_complexity_logarithmic;
        Alcotest.test_case "seed determinism" `Quick
          test_luby_seed_determinism ] );
    ( "local.coloring",
      [ Alcotest.test_case "proper" `Quick test_trial_coloring_proper;
        Alcotest.test_case "local palette" `Quick
          test_trial_coloring_palette_is_local_degree;
        Alcotest.test_case "round complexity" `Quick
          test_trial_coloring_round_complexity ] );
    ( "local.color_reduction",
      [ Alcotest.test_case "peeling proper" `Quick test_peeling_proper;
        Alcotest.test_case "deterministic" `Quick test_peeling_deterministic;
        Alcotest.test_case "adversarial ids slow" `Quick
          test_peeling_adversarial_ids_slow;
        Alcotest.test_case "good ids fast" `Quick test_peeling_good_ids_fast;
        Alcotest.test_case "mis from coloring" `Quick
          test_mis_from_coloring;
        Alcotest.test_case "rejects improper" `Quick
          test_mis_from_coloring_rejects_improper ] );
    ( "local.cole_vishkin",
      [ Alcotest.test_case "log star" `Quick test_cv_log_star;
        Alcotest.test_case "small cycle" `Quick test_cv_three_colors_small;
        Alcotest.test_case "identity ids" `Quick test_cv_identity_ids;
        Alcotest.test_case "random large ids" `Quick
          test_cv_random_large_ids;
        Alcotest.test_case "rejects bad input" `Quick
          test_cv_rejects_duplicates;
        Alcotest.test_case "log* growth" `Quick
          test_cv_iterations_grow_slowly ] );
    ( "local.congest",
      [ Alcotest.test_case "bfs distances" `Quick test_congest_bfs_distances;
        Alcotest.test_case "bfs parents" `Quick test_congest_bfs_parents;
        Alcotest.test_case "bfs unreachable" `Quick
          test_congest_bfs_unreachable;
        Alcotest.test_case "bfs round cost" `Quick
          test_congest_bfs_round_cost;
        Alcotest.test_case "aggregate count" `Quick
          test_congest_aggregate_count;
        Alcotest.test_case "aggregate sum" `Quick
          test_congest_aggregate_sum_of_ids;
        Alcotest.test_case "aggregate disconnected" `Quick
          test_congest_aggregate_disconnected;
        Alcotest.test_case "aggregate singleton" `Quick
          test_congest_aggregate_single;
        Alcotest.test_case "leader election" `Quick test_congest_leader;
        Alcotest.test_case "leader rejects disconnected" `Quick
          test_congest_leader_rejects_disconnected;
        Alcotest.test_case "gathering exceeds bandwidth" `Quick
          test_congest_gather_is_not_congest ] );
    ( "local.matching",
      [ Alcotest.test_case "valid" `Quick test_matching_local_valid;
        Alcotest.test_case "pairs consistent" `Quick
          test_matching_local_pairs_consistent;
        Alcotest.test_case "round complexity" `Quick
          test_matching_local_round_complexity;
        Alcotest.test_case "determinism" `Quick
          test_matching_local_determinism ] );
    ( "local.oracle",
      [ Alcotest.test_case "oracle = materialized (Luby)" `Quick
          test_oracle_matches_materialized_luby ] );
    ("local.properties", props) ]
