(* Concurrency stress harness for the TSan CI job (`make tsan`).

   Not an alcotest suite: TSan wants long, hot, genuinely concurrent
   schedules, and it reports races as runtime errors on its own — this
   binary just has to drive the shared-state machinery hard and assert
   the coarse invariants that survive any interleaving.  Four storms:

   1. Engine: many client threads submitting against a small bounded
      queue (shed path), short deadlines served by a deliberately slow
      cooperative handler (timeout path), a drain shutdown racing the
      last submissions, and an abort (~drain:false) shutdown mid-flight.
      Invariant: every submission gets exactly one reply.

   2. Parallel.fork_join: repeated disjoint-slice writes with varying
      domain counts, plus the failure path (one worker raises; all
      domains must still be joined and the exception re-raised).

   3. Telemetry: every domain hammers spans/counters/gauges while one
      concurrently exports and resets.  Invariant: counters converge to
      the exact expected total once everyone joins.

   4. Portfolio: repeated Portfolio.race runs racing a concurrently
      flipped cancel flag.  Invariant: every round ends in exactly one
      of {Canceled, certified winner}; cancellation leaks no domain
      (fork_join joins unconditionally, so a leak deadlocks or trips
      TSan) and drops no telemetry — the races_started counter accounts
      for every call.

   Exit 0 and a final "race_stress: OK" on success; any assertion
   failure, uncaught exception, or TSan report is a failure. *)

module Json = Ps_server.Json
module P = Ps_server.Protocol
module Engine = Ps_server.Engine
module Tm = Ps_util.Telemetry
module Parallel = Ps_util.Parallel

let domains = ref 4
let iters = ref 200
let quick = ref false

let speclist =
  [ ("--domains", Arg.Set_int domains, "N  worker/client parallelism (default 4)");
    ("--iters", Arg.Set_int iters, "N  iterations per storm (default 200)");
    ("--quick", Arg.Set quick, "  cut iteration counts for smoke runs") ]

(* ------------------------------------------------------------------ *)
(* Storm 1: the engine *)

(* Cooperative busy handler: [Ping] requests whose id is divisible by 3
   spin until cancelled (forcing the deadline machinery to fire), the
   rest answer immediately. *)
let stress_handler ~stats:_ ~cancel (req : P.request) =
  (match req.id with
  | Json.Int i when i mod 3 = 0 ->
      let deadline = Unix.gettimeofday () +. 0.5 in
      while (not (cancel ())) && Unix.gettimeofday () < deadline do
        Thread.yield ()
      done;
      if cancel () then raise Ps_core.Reduction.Canceled
  | _ -> ());
  Ok (Json.Obj [ ("pong", Json.Bool true) ])

let engine_storm ~clients ~per_client ~drain =
  let engine =
    Engine.create ~handler:stress_handler
      { Engine.domains = !domains; queue_capacity = 8;
        default_timeout_ms = Some 20; cache = None }
  in
  let replies = Atomic.make 0 in
  let submitted = Atomic.make 0 in
  let client t =
    for i = 0 to per_client - 1 do
      let req =
        { P.id = Json.Int ((t * per_client) + i);
          timeout_ms = (if i mod 5 = 0 then Some 5 else None);
          tenant = None;
          call = P.Ping }
      in
      let (_ : Engine.submit_outcome) =
        Engine.submit engine req ~reply:(fun (_ : string) ->
            Atomic.incr replies)
      in
      Atomic.incr submitted;
      if i mod 7 = 0 then Thread.yield ()
    done
  in
  let threads = List.init clients (fun t -> Thread.create client t) in
  if not drain then begin
    (* Race the abort against in-flight work: give the clients a head
       start, then pull the plug. *)
    Thread.delay 0.05;
    Engine.shutdown ~drain:false engine
  end;
  List.iter Thread.join threads;
  Engine.shutdown engine;
  (* drain-mode shutdown above is idempotent; after it, every
     submission must have produced exactly one reply. *)
  let s = Atomic.get submitted and r = Atomic.get replies in
  if s <> r then failwith (Printf.sprintf "engine storm: %d submissions but %d replies" s r);
  s

(* ------------------------------------------------------------------ *)
(* Storm 2: fork_join *)

let fork_join_storm ~rounds =
  let n = 1 lsl 14 in
  let out = Array.make n 0 in
  for round = 1 to rounds do
    let d = 1 + (round mod !domains) in
    Parallel.parallel_for ~domains:d ~lo:0 ~hi:n (fun i ->
        out.(i) <- (round * 31) + i);
    for i = 0 to n - 1 do
      if out.(i) <> (round * 31) + i then
        failwith
          (Printf.sprintf "fork_join storm: round %d slot %d holds %d" round
             i out.(i))
    done
  done;
  (* Failure path: worker 1 raises; the others must be joined and the
     exception re-raised (lowest failing index wins). *)
  let exception Boom in
  (match
     Parallel.fork_join ~domains:(max 2 !domains) (fun d ->
         if d = 1 then raise Boom else Thread.yield ())
   with
  | () -> failwith "fork_join storm: exception was swallowed"
  | exception Boom -> ());
  rounds

(* ------------------------------------------------------------------ *)
(* Storm 3: telemetry *)

let telemetry_storm ~rounds =
  Tm.set_enabled true;
  Tm.reset ();
  let d = max 2 !domains in
  let per_domain = rounds * 50 in
  Parallel.fork_join ~domains:d (fun me ->
      for i = 1 to per_domain do
        if me = 0 && i mod 17 = 0 then begin
          (* concurrent export while the others write *)
          let (_ : string) = Tm.to_json_lines () in
          let (_ : int) = Tm.counter_value "race.ticks" in
          ()
        end;
        Tm.with_span "race.span" (fun () ->
            Tm.set_int "iter" i;
            Tm.incr "race.ticks";
            Tm.gauge "race.level" (float_of_int i);
            Tm.gauge_max "race.peak" (float_of_int i))
      done);
  let expect = d * per_domain in
  let got = Tm.counter_value "race.ticks" in
  if got <> expect then
    failwith
      (Printf.sprintf "telemetry storm: expected %d ticks, counted %d" expect
         got);
  Tm.reset ();
  Tm.set_enabled false;
  expect

(* ------------------------------------------------------------------ *)
(* Storm 4: portfolio race/cancel cycles *)

let portfolio_storm ~rounds =
  Tm.set_enabled true;
  Tm.reset ();
  let module Gen = Ps_graph.Gen in
  let module Is = Ps_maxis.Independent_set in
  let module Portfolio = Ps_maxis.Portfolio in
  let g = Gen.gnp (Ps_util.Rng.create 31) 300 0.03 in
  let reference = Portfolio.race (Ps_util.Rng.create 1) g in
  let completed = ref 0 and canceled = ref 0 in
  for round = 1 to rounds do
    let flag = Atomic.make false in
    (* Flip the flag concurrently: sometimes before the race starts,
       sometimes mid-flight, sometimes never — all three interleavings
       must resolve to exactly one of {winner, Canceled}. *)
    let flipper =
      match round mod 3 with
      | 0 ->
          Atomic.set flag true;
          None
      | 1 -> None
      | _ ->
          Some
            (Thread.create
               (fun () ->
                 Thread.yield ();
                 Atomic.set flag true)
               ())
    in
    (match
       Portfolio.race ~cancel:(fun () -> Atomic.get flag)
         (Ps_util.Rng.create 1) g
     with
    | o ->
        incr completed;
        if not (Is.is_independent g o.Portfolio.set)
           || not (Is.is_maximal g o.Portfolio.set)
        then failwith "portfolio storm: uncertified winner";
        (* Exactly-one-winner determinism: any completed race of the
           same seed equals the reference outcome. *)
        if
          (not (String.equal o.Portfolio.winner reference.Portfolio.winner))
          || Is.size o.Portfolio.set <> Is.size reference.Portfolio.set
        then failwith "portfolio storm: nondeterministic winner"
    | exception Portfolio.Canceled -> incr canceled);
    Option.iter Thread.join flipper
  done;
  if !completed + !canceled <> rounds then
    failwith
      (Printf.sprintf "portfolio storm: %d completed + %d canceled <> %d"
         !completed !canceled rounds);
  (* +1 for the reference race; a dropped span/counter means a race
     path skipped its telemetry. *)
  let started = Tm.counter_value "portfolio.races_started" in
  if started <> rounds + 1 then
    failwith
      (Printf.sprintf "portfolio storm: %d races but %d recorded" (rounds + 1)
         started);
  Tm.reset ();
  Tm.set_enabled false;
  (!completed, !canceled)

(* ------------------------------------------------------------------ *)

let () =
  Arg.parse speclist
    (fun a -> raise (Arg.Bad (Printf.sprintf "unexpected argument %S" a)))
    "race_stress [--domains N] [--iters N] [--quick]";
  if !quick then iters := min !iters 40;
  let per_client = max 1 (!iters / 4) in
  let jobs_drained = engine_storm ~clients:8 ~per_client ~drain:true in
  Printf.printf "engine drain storm: %d submissions, all replied\n%!"
    jobs_drained;
  let jobs_aborted = engine_storm ~clients:8 ~per_client ~drain:false in
  Printf.printf "engine abort storm: %d submissions, all replied\n%!"
    jobs_aborted;
  let rounds = fork_join_storm ~rounds:(max 1 (!iters / 10)) in
  Printf.printf "fork_join storm: %d rounds verified\n%!" rounds;
  let ticks = telemetry_storm ~rounds:(max 1 (!iters / 10)) in
  Printf.printf "telemetry storm: %d ticks accounted for\n%!" ticks;
  let completed, canceled = portfolio_storm ~rounds:(max 1 (!iters / 5)) in
  Printf.printf "portfolio storm: %d completed, %d canceled\n%!" completed
    canceled;
  print_endline "race_stress: OK"
