(* Cross-module integration tests: the data corpus through full
   pipelines, and end-to-end flows a downstream user would run. *)

module H = Ps_hypergraph.Hypergraph
module G = Ps_graph.Graph
module Pipe = Ps_core.Pipeline
module Cert = Ps_core.Certify
module Is = Ps_maxis.Independent_set
module Rng = Ps_util.Rng

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* Locate the repository's data/ directory: dune runs tests from the
   build sandbox, so walk up from cwd until we find it. *)
let data_dir () =
  let rec up dir depth =
    if depth > 8 then None
    else if Sys.file_exists (Filename.concat dir "data/ring_48.el") then
      Some (Filename.concat dir "data")
    else up (Filename.dirname dir) (depth + 1)
  in
  up (Sys.getcwd ()) 0

let with_data name f =
  match data_dir () with
  | None -> () (* corpus not present (e.g. sandboxed build); skip *)
  | Some dir -> f (Filename.concat dir name)

let test_corpus_hypergraphs_reduce () =
  List.iter
    (fun file ->
      with_data file (fun path ->
          let h = Ps_hypergraph.Hio.read_file path in
          let result = Pipe.solve ~solver:Ps_maxis.Approx.caro_wei h in
          check_bool (file ^ " certifies") true
            result.Pipe.certificate.Cert.all_ok))
    [ "intervals_64_50.hg"; "almost_uniform_48_60.hg"; "sunflower_12.hg" ]

let test_corpus_graphs_mis () =
  List.iter
    (fun file ->
      with_data file (fun path ->
          let g = Ps_graph.Gio.read_file path in
          let flags, _ = Ps_local.Luby.run ~seed:1 g in
          let is = Is.of_indicator flags in
          check_bool (file ^ " MIS") true
            (Is.is_independent g is && Is.is_maximal g is)))
    [ "gnp_100_005.el"; "grid_8x8.el"; "ring_48.el" ]

let test_corpus_decomposition () =
  with_data "grid_8x8.el" (fun path ->
      let g = Ps_graph.Gio.read_file path in
      let d = Ps_slocal.Decomposition.ball_carving g in
      check_bool "valid" true
        (Ps_slocal.Decomposition.check_all (Ps_slocal.Decomposition.verify g d)))

(* ------------------------------------------------------------------ *)
(* End-to-end flows without the corpus *)

let test_full_flow_generate_solve_export_verify () =
  (* What a user script does: generate, solve, serialize, reload, verify. *)
  let rng = Rng.create 2026 in
  let h =
    Ps_hypergraph.Hgen.almost_uniform_random rng ~n:30 ~m:24 ~k:3 ~eps:1.0
  in
  let text = Ps_hypergraph.Hio.to_text h in
  let h' = Ps_hypergraph.Hio.of_text text in
  check_bool "serialization faithful" true (H.equal h h');
  let result = Pipe.solve ~solver:Ps_maxis.Approx.greedy_min_degree h' in
  Ps_cfc.Multicolor.verify_exn h
    result.Pipe.reduction.Ps_core.Reduction.multicoloring;
  check_bool "ok" true result.Pipe.certificate.Cert.all_ok

let test_full_flow_three_model_mis_agree_on_validity () =
  (* LOCAL, SLOCAL and compiled-LOCAL all produce valid MIS on the same
     instance; sizes may differ, validity may not. *)
  let g = Ps_graph.Gen.gnp (Rng.create 7) 90 0.07 in
  let luby, _ = Ps_local.Luby.run ~seed:2 g in
  let slocal, _ = Ps_slocal.Greedy_mis.run g in
  let module C = Ps_slocal.Compiler.Make (Ps_slocal.Greedy_mis.Algo) in
  let compiled = (C.run g).Ps_slocal.Compiler.outputs in
  List.iter
    (fun (label, flags) ->
      let is = Is.of_indicator flags in
      check_bool (label ^ " valid") true
        (Is.is_independent g is && Is.is_maximal g is))
    [ ("luby", luby); ("slocal", slocal); ("compiled", compiled) ];
  (* all three MIS sizes are within the Turán lower bound and alpha *)
  let lower =
    int_of_float (Ps_maxis.Caro_wei.expected_size_bound g)
  in
  List.iter
    (fun (label, flags) ->
      let size = Is.size (Is.of_indicator flags) in
      check_bool (label ^ " not absurdly small") true (4 * size >= lower))
    [ ("luby", luby); ("slocal", slocal); ("compiled", compiled) ]

let test_full_flow_conflict_graph_both_representations_in_reduction () =
  (* Reduction via materialized solving and via message passing agree on
     being certified (not necessarily on the coloring). *)
  let rng = Rng.create 8 in
  let h = Ps_hypergraph.Hgen.uniform_random rng ~n:16 ~m:12 ~k:3 in
  let a = Pipe.solve ~k:(Pipe.Fixed 3) ~solver:Ps_maxis.Approx.caro_wei h in
  let b = Ps_core.Reduction_local.run ~k:3 h in
  check_bool "centralized certifies" true a.Pipe.certificate.Cert.all_ok;
  check_bool "local certifies" true
    (Cert.certify b.Ps_core.Reduction_local.reduction).Cert.all_ok

let suites =
  [ ( "integration.corpus",
      [ Alcotest.test_case "hypergraphs reduce" `Quick
          test_corpus_hypergraphs_reduce;
        Alcotest.test_case "graphs MIS" `Quick test_corpus_graphs_mis;
        Alcotest.test_case "decomposition" `Quick test_corpus_decomposition ]
    );
    ( "integration.flows",
      [ Alcotest.test_case "generate-solve-export-verify" `Quick
          test_full_flow_generate_solve_export_verify;
        Alcotest.test_case "three-model MIS" `Quick
          test_full_flow_three_model_mis_agree_on_validity;
        Alcotest.test_case "both reduction drivers" `Quick
          test_full_flow_conflict_graph_both_representations_in_reduction ]
    ) ]
