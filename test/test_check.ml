(* Tests for Ps_check, the deep invariant certifiers: unit cases pin
   each rule's trigger (one deliberately corrupted object per rule, with
   the position checked, not just "some diagnostic"), and qcheck
   round-trips establish the two directions that make a certifier
   trustworthy — real pipeline output always passes, and a mutation of
   real output always fails with the right rule. *)

module D = Ps_check.Diagnostic
module Cg = Ps_check.Check_graph
module Cs = Ps_check.Check_set
module Cc = Ps_check.Check_cfc
module Cp = Ps_check.Check_phase
module G = Ps_graph.Graph
module Gen = Ps_graph.Gen
module H = Ps_hypergraph.Hypergraph
module Hgen = Ps_hypergraph.Hgen
module Mc = Ps_cfc.Multicolor
module Is = Ps_maxis.Independent_set
module Bitset = Ps_util.Bitset
module Rng = Ps_util.Rng

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let assert_clean what ds =
  if ds <> [] then
    Alcotest.failf "%s: expected no diagnostics, got %s" what
      (String.concat "; " (List.map D.to_string ds))

let assert_rule what rule ds =
  if not (List.exists (fun d -> String.equal d.D.rule rule) ds) then
    Alcotest.failf "%s: expected a [%s] diagnostic, got %s" what rule
      (match ds with
      | [] -> "none"
      | ds -> String.concat "; " (List.map D.to_string ds))

(* ------------------------------------------------------------------ *)
(* Diagnostic *)

let test_diag_render () =
  let d = D.v "some-rule" (D.Graph_edge (2, 5)) "broken %d" 7 in
  check_string "render" "[some-rule] edge (2,5): broken 7" (D.to_string d);
  check_string "kind" "graph_edge" (D.where_kind d.D.where);
  check_int "indices" 2 (List.nth (D.where_indices d.D.where) 0);
  check_int "indices" 5 (List.nth (D.where_indices d.D.where) 1)

let test_diag_acc_bounded () =
  let acc = D.acc ~limit:3 () in
  for i = 1 to 100 do
    D.push acc (D.v "r" (D.Vertex i) "d%d" i)
  done;
  check_int "count includes suppressed" 100 (D.count acc);
  let ds = D.close acc in
  check_int "kept + summary" 4 (List.length ds);
  assert_rule "overflow summary" "diagnostic-limit" ds

(* ------------------------------------------------------------------ *)
(* Check_graph *)

let test_csr_valid_constructions () =
  assert_clean "empty" (Cg.csr (G.empty 0));
  assert_clean "ring" (Cg.csr (Gen.ring 7));
  assert_clean "complete" (Cg.csr (Gen.complete 5));
  assert_clean "gnp" (Cg.csr (Gen.gnp (Rng.create 11) 40 0.2));
  check_bool "csr_ok" true (Cg.csr_ok (Gen.grid 4 5))

let corrupt ~n ~offsets ~adj = G.of_csr ~validate:false n ~offsets ~adj

let test_csr_corruptions () =
  (* self-loop *)
  assert_rule "self-loop" "csr"
    (Cg.csr (corrupt ~n:1 ~offsets:[| 0; 2 |] ~adj:[| 0; 0 |]));
  (* a well-formed adoption is fine: 0->1 and 1->0 are both present *)
  assert_clean "single edge"
    (Cg.csr (corrupt ~n:2 ~offsets:[| 0; 1; 2 |] ~adj:[| 1; 0 |]))

let test_csr_corruptions_real () =
  (* non-monotone offsets *)
  assert_rule "non-monotone offsets" "csr"
    (Cg.csr (corrupt ~n:2 ~offsets:[| 0; 2; 2 |] ~adj:[| 1; 0 |]));
  (* neighbor out of range *)
  assert_rule "out of range" "csr"
    (Cg.csr (corrupt ~n:2 ~offsets:[| 0; 1; 2 |] ~adj:[| 5; 0 |]));
  (* unsorted row: 2,1 in vertex 0's row *)
  assert_rule "unsorted row" "csr"
    (Cg.csr
       (corrupt ~n:3
          ~offsets:[| 0; 2; 3; 4 |]
          ~adj:[| 2; 1; 0; 0 |]));
  (* asymmetric: 0->1 present, 1->0 absent (1 points at 2 instead) *)
  assert_rule "missing reverse arc" "csr"
    (Cg.csr
       (corrupt ~n:3
          ~offsets:[| 0; 1; 2; 3 |]
          ~adj:[| 1; 2; 1 |]))

(* ------------------------------------------------------------------ *)
(* Check_set *)

let path3 = Gen.path 3 (* edges 0-1, 1-2 *)

let bits n vs = Bitset.of_list n vs

let test_independent () =
  assert_clean "ends of a path" (Cs.independent path3 (bits 3 [ 0; 2 ]));
  let ds = Cs.independent path3 (bits 3 [ 0; 1 ]) in
  assert_rule "internal edge" "independent-set" ds;
  (match ds with
  | { D.where = D.Graph_edge (0, 1); _ } :: _ -> ()
  | _ -> Alcotest.fail "expected the (0,1) edge to be named");
  (* capacity mismatch is a Global diagnostic, not an exception *)
  assert_rule "capacity" "independent-set"
    (Cs.independent path3 (bits 7 [ 0 ]))

let test_maximal_independent () =
  assert_clean "maximal" (Cs.maximal_independent path3 (bits 3 [ 0; 2 ]));
  let ds = Cs.maximal_independent path3 (bits 3 [ 0 ]) in
  assert_rule "vertex 2 uncovered" "maximal-independent-set" ds;
  match ds with
  | [ { D.where = D.Vertex 2; _ } ] -> ()
  | _ -> Alcotest.fail "expected exactly vertex 2 to be named"

let test_dominating () =
  assert_clean "center dominates" (Cs.dominating path3 (bits 3 [ 1 ]));
  let ds = Cs.dominating path3 (bits 3 [ 0 ]) in
  assert_rule "vertex 2 undominated" "dominating-set" ds

let test_untrusted_lists () =
  assert_clean "ok list" (Cs.independent_list path3 [ 0; 2 ]);
  let ds = Cs.independent_list path3 [ 0; 99 ] in
  assert_rule "out-of-range id" "independent-set" ds;
  (* range errors short-circuit: no phantom edge diagnostics *)
  check_int "only the range error" 1 (List.length ds);
  assert_rule "dominating out-of-range" "dominating-set"
    (Cs.dominating_list path3 [ -1 ])

(* ------------------------------------------------------------------ *)
(* Check_cfc *)

let hg_pair = H.of_edges 3 [ [ 0; 1 ]; [ 1; 2 ] ]

let test_multicoloring_representation () =
  assert_clean "sound" (Cc.representation hg_pair [| [ 0 ]; []; [ 1 ] |]);
  assert_rule "wrong length" "multicoloring-rep"
    (Cc.representation hg_pair [| [ 0 ]; [] |]);
  assert_rule "negative color" "multicoloring-rep"
    (Cc.representation hg_pair [| [ -1 ]; []; [] |]);
  assert_rule "unsorted" "multicoloring-rep"
    (Cc.representation hg_pair [| [ 2; 1 ]; []; [] |]);
  assert_rule "duplicate" "multicoloring-rep"
    (Cc.representation hg_pair [| [ 1; 1 ]; []; [] |])

let test_multicoloring_semantics () =
  assert_clean "conflict-free"
    (Cc.multicoloring hg_pair [| [ 0 ]; []; [ 0 ] |]);
  check_bool "conflict_free" true
    (Cc.conflict_free hg_pair [| [ 0 ]; []; [ 0 ] |]);
  (* edge {0,1}: both members hold only color 0 — no unique pair *)
  let ds = Cc.multicoloring hg_pair [| [ 0 ]; [ 0 ]; [ 1 ] |] in
  assert_rule "collision" "conflict-free" ds;
  (match ds with
  | { D.where = D.Edge 0; _ } :: _ -> ()
  | _ -> Alcotest.fail "expected edge 0 to be named");
  (* blank coloring: every edge unhappy *)
  let ds = Cc.multicoloring hg_pair [| []; []; [] |] in
  check_int "both edges reported" 2 (List.length ds)

(* ------------------------------------------------------------------ *)
(* Check_phase *)

(* A consistent two-phase run: 10 edges, |I^0|=5 with λ=2, then the
   5 survivors all retired by a 5-triple phase with λ=1. *)
let good_phases =
  [ { Cp.index = 0; edges_before = 10; is_size = 5; newly_happy = 5;
      lambda_effective = 2.0 };
    { Cp.index = 1; edges_before = 5; is_size = 5; newly_happy = 5;
      lambda_effective = 1.0 } ]

let test_phase_audit_valid () =
  assert_clean "good run"
    (Cp.audit ~m:10 ~k:2 ~colors_used:4 ~total_phases:2 good_phases)

let with_phase0 f =
  match good_phases with p0 :: rest -> f p0 :: rest | [] -> assert false

let test_phase_audit_mutations () =
  assert_rule "lemma 2.1 violated" "phase-happiness"
    (Cp.happiness (with_phase0 (fun p -> { p with Cp.newly_happy = 4 })));
  assert_rule "lambda fudged" "phase-lambda"
    (Cp.lambda (with_phase0 (fun p -> { p with Cp.lambda_effective = 1.5 })));
  assert_rule "bookkeeping broken" "phase-decay"
    (Cp.decay (with_phase0 (fun p -> { p with Cp.newly_happy = 6 })));
  assert_rule "index gap" "phase-decay"
    (Cp.decay
       (with_phase0 (fun p -> { p with Cp.index = 3 })));
  assert_rule "edges left over" "phase-termination"
    (Cp.termination
       [ { Cp.index = 0; edges_before = 10; is_size = 4; newly_happy = 4;
           lambda_effective = 2.5 } ]);
  (* ρ = λmax·ln m + 1 = 1·ln 10 + 1 ≈ 3.3 < 5 claimed phases *)
  assert_rule "too many phases" "rho-bound"
    (Cp.rho_bound ~m:10 ~total_phases:5
       [ { Cp.index = 0; edges_before = 10; is_size = 10; newly_happy = 10;
           lambda_effective = 1.0 } ]);
  assert_rule "palette overdrawn" "color-budget"
    (Cp.color_budget ~k:2 ~total_phases:2 ~colors_used:5);
  assert_rule "record count mismatch" "phase-bookkeeping"
    (Cp.audit ~m:10 ~k:2 ~colors_used:4 ~total_phases:3 good_phases);
  assert_rule "first phase must see all of E" "phase-bookkeeping"
    (Cp.audit ~m:11 ~k:2 ~colors_used:4 ~total_phases:2 good_phases)

(* ------------------------------------------------------------------ *)
(* End-to-end: Certify.diagnostics on real runs *)

let solve params =
  let seed, n, m, k = params in
  let h =
    Hgen.almost_uniform_random (Rng.create seed) ~n ~m ~k:(min k n) ~eps:1.0
  in
  ( h,
    Ps_core.Pipeline.solve_unchecked ~seed ~solver:Ps_maxis.Approx.greedy_min_degree h )

let test_audit_accepts_pipeline_output () =
  let _, r = solve (7, 20, 15, 3) in
  assert_clean "pipeline output certifies"
    (Ps_core.Certify.diagnostics r.Ps_core.Pipeline.reduction)

let test_audit_rejects_blanked_coloring () =
  let h, r = solve (7, 20, 15, 3) in
  let run = r.Ps_core.Pipeline.reduction in
  let blank = Array.map (fun _ -> []) run.Ps_core.Reduction.multicoloring in
  let ds =
    Ps_check.Audit.reduction ~h ~k:run.Ps_core.Reduction.k
      ~multicoloring:blank
      ~colors_used:run.Ps_core.Reduction.colors_used
      ~total_phases:run.Ps_core.Reduction.total_phases
      ~phases:(Ps_core.Certify.phases_for_check run)
  in
  assert_rule "blanked coloring rejected" "conflict-free" ds;
  check_bool "not ok" false (Ps_check.Audit.ok ds)

(* ------------------------------------------------------------------ *)
(* qcheck round-trips *)

let arbitrary_hg =
  QCheck.make
    ~print:(fun (seed, n, m, k) ->
      Printf.sprintf "hg seed=%d n=%d m=%d k=%d" seed n m k)
    QCheck.Gen.(
      quad (int_bound 1000) (int_range 3 24) (int_range 1 18) (int_range 1 4))

let prop_pipeline_always_certifies =
  QCheck.Test.make ~count:75 ~name:"audit accepts every pipeline run"
    arbitrary_hg (fun params ->
      let _, r = solve params in
      Ps_check.Audit.ok
        (Ps_core.Certify.diagnostics r.Ps_core.Pipeline.reduction))

let prop_blanked_vertex_is_caught =
  QCheck.Test.make ~count:75
    ~name:"blanking every color is always rejected as conflict-free"
    arbitrary_hg (fun params ->
      let h, r = solve params in
      if H.n_edges h = 0 then true
      else begin
        let run = r.Ps_core.Pipeline.reduction in
        let blank =
          Array.map (fun _ -> []) run.Ps_core.Reduction.multicoloring
        in
        let ds = Cc.multicoloring h blank in
        List.exists (fun d -> String.equal d.D.rule "conflict-free") ds
      end)

let arbitrary_graph =
  QCheck.make
    ~print:(fun (seed, n, p10) -> Printf.sprintf "g seed=%d n=%d p=%d%%" seed n p10)
    QCheck.Gen.(triple (int_bound 1000) (int_range 1 40) (int_range 0 10))

let prop_greedy_mis_certifies =
  QCheck.Test.make ~count:100
    ~name:"greedy MIS always passes the maximal-independent-set certifier"
    arbitrary_graph (fun (seed, n, p10) ->
      let g = Gen.gnp (Rng.create seed) n (float_of_int p10 /. 10.) in
      let is = Ps_maxis.Greedy.min_degree g in
      Cg.csr_ok g
      && Cs.maximal_independent g is = [])

let prop_mutated_is_is_caught =
  QCheck.Test.make ~count:100
    ~name:"adding a covered vertex to an MIS is always caught"
    arbitrary_graph (fun (seed, n, p10) ->
      let g = Gen.gnp (Rng.create seed) n (float_of_int p10 /. 10.) in
      let is = Ps_maxis.Greedy.min_degree g in
      (* find a vertex outside the set; adding it breaks independence
         (it has a selected neighbor — that is what maximality means) *)
      match
        List.find_opt (fun v -> not (Bitset.mem is v)) (G.vertices g)
      with
      | None -> true (* the whole graph is independent: nothing to mutate *)
      | Some v ->
          let bad = Bitset.copy is in
          Bitset.add bad v;
          List.exists
            (fun d -> String.equal d.D.rule "independent-set")
            (Cs.independent g bad))

(* ------------------------------------------------------------------ *)

let qcheck_suites =
  List.map QCheck_alcotest.to_alcotest
    [ prop_pipeline_always_certifies; prop_blanked_vertex_is_caught;
      prop_greedy_mis_certifies; prop_mutated_is_is_caught ]

let suites =
  [ ( "check.diagnostic",
      [ Alcotest.test_case "render" `Quick test_diag_render;
        Alcotest.test_case "bounded accumulator" `Quick
          test_diag_acc_bounded ] );
    ( "check.graph",
      [ Alcotest.test_case "valid constructions" `Quick
          test_csr_valid_constructions;
        Alcotest.test_case "loop and symmetry" `Quick test_csr_corruptions;
        Alcotest.test_case "corruptions" `Quick test_csr_corruptions_real ] );
    ( "check.set",
      [ Alcotest.test_case "independent" `Quick test_independent;
        Alcotest.test_case "maximal independent" `Quick
          test_maximal_independent;
        Alcotest.test_case "dominating" `Quick test_dominating;
        Alcotest.test_case "untrusted lists" `Quick test_untrusted_lists ] );
    ( "check.cfc",
      [ Alcotest.test_case "representation" `Quick
          test_multicoloring_representation;
        Alcotest.test_case "semantics" `Quick test_multicoloring_semantics ] );
    ( "check.phase",
      [ Alcotest.test_case "valid audit" `Quick test_phase_audit_valid;
        Alcotest.test_case "mutations" `Quick test_phase_audit_mutations ] );
    ( "check.audit",
      [ Alcotest.test_case "accepts pipeline output" `Quick
          test_audit_accepts_pipeline_output;
        Alcotest.test_case "rejects blanked coloring" `Quick
          test_audit_rejects_blanked_coloring ] );
    ("check.qcheck", qcheck_suites) ]
