(* Tests for the solved-instance cache: the canonical content hash
   (width- and representation-independent, agreeing exactly with
   [Graph.equal]), the byte-budget LRU against an assoc-list reference
   model, bit-identity of cache hits and warm-started solves with fresh
   solves, the sampled-audit rejection of a poisoned entry, and the
   persistent disk tier. *)

module G = Ps_graph.Graph
module H = Ps_hypergraph.Hypergraph
module Hgen = Ps_hypergraph.Hgen
module Pl = Ps_core.Pipeline
module Rd = Ps_core.Reduction
module Cache = Ps_cache.Cache
module Lru = Ps_cache.Lru
module P = Ps_server.Protocol
module Json = Ps_server.Json

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Graph content hash *)

let graph_gen =
  QCheck.make
    ~print:(fun (n, edges, _) ->
      Printf.sprintf "n=%d edges=%s" n
        (String.concat ","
           (List.map (fun (u, v) -> Printf.sprintf "%d-%d" u v) edges)))
    QCheck.Gen.(
      int_range 2 40 >>= fun n ->
      list_size (int_bound 80)
        (pair (int_bound (n - 1)) (int_bound (n - 1)))
      >>= fun raw ->
      int >>= fun salt ->
      let edges = List.filter (fun (u, v) -> u <> v) raw in
      return (n, edges, salt))

let qcheck_hash_width_independent =
  QCheck.Test.make ~count:100
    ~name:"content_hash is width-independent"
    graph_gen
    (fun (n, edges, _) ->
      let g = G.of_edges n edges in
      let narrow = G.with_width g `Int32 in
      let wide = G.with_width g `Int in
      Int64.equal (G.content_hash g) (G.content_hash narrow)
      && Int64.equal (G.content_hash g) (G.content_hash wide))

let qcheck_hash_iff_equal =
  (* Over pairs from the same family: hash equality must coincide with
     structural equality in both directions.  (⟸ is unconditional; a ⟹
     failure would be a 2^-64 collision, which qcheck will never draw.) *)
  QCheck.Test.make ~count:200
    ~name:"content_hash equal iff Graph.equal"
    (QCheck.pair graph_gen graph_gen)
    (fun ((n1, e1, _), (n2, e2, _)) ->
      let a = G.of_edges n1 e1 and b = G.of_edges n2 e2 in
      Bool.equal
        (Int64.equal (G.content_hash a) (G.content_hash b))
        (G.equal a b))

let qcheck_hash_permutation =
  (* Relabeling by a non-trivial permutation changes the adjacency
     content (unless it happens to be an automorphism), and the hash
     must track Graph.equal exactly either way. *)
  QCheck.Test.make ~count:200
    ~name:"content_hash tracks Graph.equal under vertex permutation"
    graph_gen
    (fun (n, edges, salt) ->
      let g = G.of_edges n edges in
      let perm = Array.init n Fun.id in
      let rng = Ps_util.Rng.create salt in
      for i = n - 1 downto 1 do
        let j = Ps_util.Rng.int rng (i + 1) in
        let t = perm.(i) in
        perm.(i) <- perm.(j);
        perm.(j) <- t
      done;
      let permuted =
        G.of_edges n (List.map (fun (u, v) -> (perm.(u), perm.(v))) edges)
      in
      Bool.equal
        (Int64.equal (G.content_hash g) (G.content_hash permuted))
        (G.equal g permuted))

let test_hypergraph_hash () =
  let h1 = Hgen.sunflower ~n_petals:6 ~core:2 ~petal:3 in
  let h2 = Hgen.sunflower ~n_petals:6 ~core:2 ~petal:3 in
  let h3 = Hgen.sunflower ~n_petals:7 ~core:2 ~petal:3 in
  check_bool "equal hypergraphs hash equal" true
    (Int64.equal (Cache.hypergraph_hash h1) (Cache.hypergraph_hash h2));
  check_bool "different hypergraphs hash apart" false
    (Int64.equal (Cache.hypergraph_hash h1) (Cache.hypergraph_hash h3))

(* ------------------------------------------------------------------ *)
(* LRU vs an assoc-list reference model *)

(* The reference: MRU-first assoc list of (key, cost), total bytes, and
   an eviction counter.  [put] removes any existing binding, conses the
   new one in front, then drops from the tail while over budget —
   exactly the documented Lru contract. *)
type model = {
  mutable entries : (string * int) list;  (* MRU first *)
  budget : int;
  mutable evicted : int;
}

let model_bytes m = List.fold_left (fun a (_, c) -> a + c) 0 m.entries

let model_put m key cost =
  m.entries <- (key, cost) :: List.remove_assoc key m.entries;
  while model_bytes m > m.budget do
    match List.rev m.entries with
    | [] -> assert false
    | (k, _) :: _ ->
        m.entries <- List.filter (fun (k', _) -> not (String.equal k' k)) m.entries;
        m.evicted <- m.evicted + 1
  done

let model_find m key =
  match List.assoc_opt key m.entries with
  | None -> false
  | Some cost ->
      m.entries <- (key, cost) :: List.remove_assoc key m.entries;
      true

type op = Put of string * int | Find of string

let op_gen =
  QCheck.make
    ~print:(fun ops ->
      String.concat ";"
        (List.map
           (function
             | Put (k, c) -> Printf.sprintf "put %s %d" k c
             | Find k -> Printf.sprintf "find %s" k)
           ops))
    QCheck.Gen.(
      let key = map (fun i -> String.make 1 (Char.chr (Char.code 'a' + i)))
          (int_bound 5) in
      list_size (int_bound 120)
        (oneof
           [ map2 (fun k c -> Put (k, c)) key (int_bound 12);
             map (fun k -> Find k) key ]))

let qcheck_lru_model =
  QCheck.Test.make ~count:300 ~name:"Lru agrees with the reference model"
    op_gen
    (fun ops ->
      let budget = 20 in
      let lru = Lru.create ~budget in
      let m = { entries = []; budget; evicted = 0 } in
      List.iter
        (fun op ->
          (match op with
          | Put (k, c) ->
              Lru.put lru k () ~cost:c;
              model_put m k c
          | Find k ->
              let hit = Option.is_some (Lru.find lru k) in
              let model_hit = model_find m k in
              if not (Bool.equal hit model_hit) then
                QCheck.Test.fail_reportf "find %s: lru=%b model=%b" k hit
                  model_hit);
          let lru_list = Lru.to_list lru in
          if not (List.equal (fun (k, c) (k', c') ->
                      String.equal k k' && Int.equal c c')
                    lru_list m.entries)
          then QCheck.Test.fail_reportf "recency order diverged";
          if Lru.bytes lru <> model_bytes m then
            QCheck.Test.fail_reportf "bytes diverged";
          if Lru.evictions lru <> m.evicted then
            QCheck.Test.fail_reportf "evictions diverged: lru=%d model=%d"
              (Lru.evictions lru) m.evicted)
        ops;
      true)

let test_lru_directed () =
  let lru = Lru.create ~budget:10 in
  Lru.put lru "a" 1 ~cost:4;
  Lru.put lru "b" 2 ~cost:4;
  (* Promote "a"; inserting "c" must now evict "b", the LRU entry. *)
  check_bool "find a" true (Option.is_some (Lru.find lru "a"));
  Lru.put lru "c" 3 ~cost:4;
  check_bool "b evicted" true (Lru.peek lru "b" = None);
  check_bool "a kept" true (Option.is_some (Lru.peek lru "a"));
  check_int "one eviction" 1 (Lru.evictions lru);
  (* An entry larger than the whole budget flushes the tail on its way
     in and then gets evicted itself — nothing sticks. *)
  Lru.put lru "huge" 4 ~cost:99;
  check_bool "huge rejected" true (Lru.peek lru "huge" = None);
  check_int "oversized put flushed everything" 0 (Lru.length lru);
  (* Shrinking the budget evicts down to it. *)
  Lru.put lru "d" 5 ~cost:4;
  Lru.put lru "e" 6 ~cost:4;
  Lru.set_budget lru 4;
  check_int "shrunk to one entry" 1 (Lru.length lru);
  check_bool "survivor is the MRU entry" true (Option.is_some (Lru.peek lru "e"));
  check_bool "remove" true (Lru.remove lru "e");
  check_int "empty" 0 (Lru.length lru)

(* ------------------------------------------------------------------ *)
(* Bit-identity: hits and warm starts vs fresh solves *)

let result_fingerprint r =
  (* The full wire rendering: multicoloring, phase records, certificate
     verdicts.  Byte equality here is the "bit-identical" contract. *)
  Json.to_string (P.reduce_result ~detail:true r)

let hypergraph_cases =
  [ ("sunflower", Hgen.sunflower ~n_petals:8 ~core:3 ~petal:3);
    ("intervals", Hgen.all_intervals_of_length ~n:40 ~len:6);
    ( "uniform",
      Hgen.uniform_random (Ps_util.Rng.create 7) ~n:30 ~m:25 ~k:4 ) ]

let test_hit_bit_identical () =
  List.iter
    (fun (name, h) ->
      let fresh =
        Pl.solve_unchecked ~seed:3 ~solver:Ps_maxis.Approx.greedy_min_degree h
      in
      let cache = Cache.create () in
      let miss =
        Cache.solve cache ~k:None ~solver:Ps_maxis.Approx.greedy_min_degree
          ~solver_name:"greedy" ~seed:3 h
      in
      let hit =
        Cache.solve cache ~k:None ~solver:Ps_maxis.Approx.greedy_min_degree
          ~solver_name:"greedy" ~seed:3 h
      in
      check_string (name ^ ": miss = fresh") (result_fingerprint fresh)
        (result_fingerprint miss);
      check_string (name ^ ": hit = fresh") (result_fingerprint fresh)
        (result_fingerprint hit);
      let s = Cache.stats cache in
      check_int (name ^ ": one hit") 1 s.Cache.hits;
      check_int (name ^ ": one miss") 1 s.Cache.misses)
    hypergraph_cases

let test_warm_start_bit_identical () =
  List.iter
    (fun (name, h) ->
      let cache = Cache.create () in
      (* Prime result + warm tiers with one solver... *)
      ignore
        (Cache.solve cache ~k:None ~solver:Ps_maxis.Approx.greedy_min_degree
           ~solver_name:"greedy" ~seed:0 h
          : Pl.result);
      (* ...then solve with a different solver: result-tier miss, but
         the phase-0 CSR replays from the warm tier. *)
      let warmed =
        Cache.solve cache ~k:None ~solver:Ps_maxis.Approx.caro_wei
          ~solver_name:"caro-wei" ~seed:5 h
      in
      let fresh = Pl.solve_unchecked ~seed:5 ~solver:Ps_maxis.Approx.caro_wei h in
      check_string (name ^ ": warm-started = fresh")
        (result_fingerprint fresh) (result_fingerprint warmed);
      let s = Cache.stats cache in
      check_int (name ^ ": warm tier hit once") 1 s.Cache.warm_hits;
      check_bool (name ^ ": warm tier populated") true (s.Cache.warm_entries >= 1))
    hypergraph_cases

let qcheck_cached_solve_bit_identical =
  QCheck.Test.make ~count:30
    ~name:"cached solve bit-identical to fresh across random instances"
    (QCheck.make
       ~print:(fun (seed, n, m) -> Printf.sprintf "seed=%d n=%d m=%d" seed n m)
       QCheck.Gen.(triple (int_bound 1000) (int_range 6 24) (int_range 4 30)))
    (fun (seed, n, m) ->
      let h = Hgen.uniform_random (Ps_util.Rng.create seed) ~n ~m ~k:3 in
      let fresh =
        Pl.solve_unchecked ~seed ~solver:Ps_maxis.Approx.caro_wei h
      in
      let cache = Cache.create () in
      let solve () =
        Cache.solve cache ~k:None ~solver:Ps_maxis.Approx.caro_wei
          ~solver_name:"caro-wei" ~seed h
      in
      let miss = solve () in
      let hit = solve () in
      String.equal (result_fingerprint fresh) (result_fingerprint miss)
      && String.equal (result_fingerprint fresh) (result_fingerprint hit)
      && (Cache.stats cache).Cache.hits = 1)

(* ------------------------------------------------------------------ *)
(* Poisoned entries: the sampled audit must catch and drop them *)

let poison r =
  (* Blank the multicoloring but keep the (now lying) certificate: the
     store-side all_ok check passes, only a read-side re-certification
     can notice. *)
  { r with
    Pl.reduction =
      { r.Pl.reduction with
        Rd.multicoloring =
          Array.map (fun _ -> []) r.Pl.reduction.Rd.multicoloring } }

let audit_all_config =
  { Cache.default_config with audit_rate = 1.0 }

let test_poisoned_entry_dropped () =
  let h = Hgen.sunflower ~n_petals:8 ~core:3 ~petal:3 in
  let good =
    Pl.solve_unchecked ~seed:0 ~solver:Ps_maxis.Approx.greedy_min_degree h
  in
  let cache = Cache.create ~config:audit_all_config () in
  Cache.store_solve cache ~k:None ~solver_name:"greedy" ~seed:0 (poison good);
  check_int "poisoned entry stored" 1 (Cache.stats cache).Cache.entries;
  (* The audit-on-hit must reject it and fall through to a miss... *)
  check_bool "find returns nothing" true
    (Cache.find_solve cache ~k:None ~solver_name:"greedy" ~seed:0 h = None);
  let s = Cache.stats cache in
  check_int "audit ran" 1 s.Cache.audits;
  check_int "entry poisoned" 1 s.Cache.poisoned;
  check_int "entry dropped" 0 s.Cache.entries;
  check_int "never served as a hit" 0 s.Cache.hits;
  (* ...and a full cached solve now recomputes a correct result. *)
  let r =
    Cache.solve cache ~k:None ~solver:Ps_maxis.Approx.greedy_min_degree
      ~solver_name:"greedy" ~seed:0 h
  in
  check_string "recovered result is the fresh one" (result_fingerprint good)
    (result_fingerprint r)

let test_clean_entry_survives_audit () =
  let h = Hgen.sunflower ~n_petals:8 ~core:3 ~petal:3 in
  let cache = Cache.create ~config:audit_all_config () in
  ignore
    (Cache.solve cache ~k:None ~solver:Ps_maxis.Approx.greedy_min_degree
       ~solver_name:"greedy" ~seed:0 h
      : Pl.result);
  (* Every hit is audited at rate 1.0; a clean entry keeps serving. *)
  for _ = 1 to 3 do
    check_bool "served" true
      (Cache.find_solve cache ~k:None ~solver_name:"greedy" ~seed:0 h <> None)
  done;
  let s = Cache.stats cache in
  check_int "three audits" 3 s.Cache.audits;
  check_int "none poisoned" 0 s.Cache.poisoned;
  check_int "three hits" 3 s.Cache.hits

(* ------------------------------------------------------------------ *)
(* Key separation and the opaque graph tier *)

let test_key_separation () =
  let h = Hgen.sunflower ~n_petals:8 ~core:3 ~petal:3 in
  let cache = Cache.create () in
  ignore
    (Cache.solve cache ~k:None ~solver:Ps_maxis.Approx.greedy_min_degree
       ~solver_name:"greedy" ~seed:0 h
      : Pl.result);
  (* Different solver, seed, or k must all miss. *)
  check_bool "other solver misses" true
    (Cache.find_solve cache ~k:None ~solver_name:"caro-wei" ~seed:0 h = None);
  check_bool "other seed misses" true
    (Cache.find_solve cache ~k:None ~solver_name:"greedy" ~seed:1 h = None);
  check_bool "explicit k misses" true
    (Cache.find_solve cache ~k:(Some 3) ~solver_name:"greedy" ~seed:0 h = None);
  check_bool "same request hits" true
    (Cache.find_solve cache ~k:None ~solver_name:"greedy" ~seed:0 h <> None)

let test_graph_tier () =
  let g = G.of_edges 6 [ (0, 1); (1, 2); (2, 3); (4, 5) ] in
  let cache = Cache.create () in
  check_bool "cold" true
    (Cache.find_graph_result cache ~kind:Cache.Mis ~solver_name:"all" ~seed:0 g
    = None);
  Cache.store_graph_result cache ~kind:Cache.Mis ~solver_name:"all" ~seed:0 g
    "{\"payload\":1}";
  check_bool "hit" true
    (Cache.find_graph_result cache ~kind:Cache.Mis ~solver_name:"all" ~seed:0 g
    = Some "{\"payload\":1}");
  (* Kind partitions the key space. *)
  check_bool "other kind misses" true
    (Cache.find_graph_result cache ~kind:Cache.Decompose ~solver_name:"all"
       ~seed:0 g
    = None)

(* ------------------------------------------------------------------ *)
(* Disk tier *)

let with_temp_dir f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "ps_cache_test_%d" (Unix.getpid ()))
  in
  let rec clean d =
    if Sys.file_exists d then begin
      Array.iter
        (fun f ->
          let p = Filename.concat d f in
          if Sys.is_directory p then clean p else Sys.remove p)
        (Sys.readdir d);
      Unix.rmdir d
    end
  in
  clean dir;
  Fun.protect ~finally:(fun () -> clean dir) (fun () -> f dir)

let test_disk_tier_roundtrip () =
  with_temp_dir @@ fun dir ->
  let h = Hgen.sunflower ~n_petals:8 ~core:3 ~petal:3 in
  let config = { Cache.default_config with dir = Some dir } in
  let c1 = Cache.create ~config () in
  let r1 =
    Cache.solve c1 ~k:None ~solver:Ps_maxis.Approx.greedy_min_degree
      ~solver_name:"greedy" ~seed:0 h
  in
  let entries, bytes = Cache.dir_stats dir in
  check_int "one entry on disk" 1 entries;
  check_bool "entry has bytes" true (bytes > 0);
  (* A fresh process (new cache over the same dir) reads it back. *)
  let c2 = Cache.create ~config () in
  let r2 =
    Cache.solve c2 ~k:None ~solver:Ps_maxis.Approx.greedy_min_degree
      ~solver_name:"greedy" ~seed:0 h
  in
  check_string "disk hit bit-identical" (result_fingerprint r1)
    (result_fingerprint r2);
  let s = Cache.stats c2 in
  check_int "served from disk" 1 s.Cache.disk_hits;
  check_int "counted as a hit" 1 s.Cache.hits;
  check_int "dir_list one key" 1 (List.length (Cache.dir_list dir));
  check_int "dir_clear removes it" 1 (Cache.dir_clear dir);
  check_bool "dir empty" true (Cache.dir_stats dir = (0, 0))

let test_disk_tier_corruption_ignored () =
  with_temp_dir @@ fun dir ->
  let h = Hgen.sunflower ~n_petals:8 ~core:3 ~petal:3 in
  let config = { Cache.default_config with dir = Some dir } in
  let c1 = Cache.create ~config () in
  ignore
    (Cache.solve c1 ~k:None ~solver:Ps_maxis.Approx.greedy_min_degree
       ~solver_name:"greedy" ~seed:0 h
      : Pl.result);
  (* Flip bytes in the middle of the entry file: the checksum must
     reject it and the cache must fall back to a fresh solve. *)
  (match Cache.dir_list dir with
  | [ _ ] -> ()
  | l -> Alcotest.failf "expected 1 entry, got %d" (List.length l));
  Array.iter
    (fun f ->
      let path = Filename.concat dir f in
      let ic = open_in_bin path in
      let s = Bytes.of_string (In_channel.input_all ic) in
      close_in ic;
      let mid = Bytes.length s / 2 in
      Bytes.set s mid (Char.chr (Char.code (Bytes.get s mid) lxor 0xff));
      let oc = open_out_bin path in
      output_bytes oc s;
      close_out oc)
    (Sys.readdir dir);
  let c2 = Cache.create ~config () in
  let r =
    Cache.solve c2 ~k:None ~solver:Ps_maxis.Approx.greedy_min_degree
      ~solver_name:"greedy" ~seed:0 h
  in
  check_bool "recovered with a fresh, certified solve" true
    r.Pl.certificate.Ps_core.Certify.all_ok;
  let s = Cache.stats c2 in
  check_int "no disk hit from the corrupt file" 0 s.Cache.disk_hits;
  check_int "counted as a miss" 1 s.Cache.misses

(* ------------------------------------------------------------------ *)

let suites =
  [ ( "cache:hash",
      List.map QCheck_alcotest.to_alcotest
        [ qcheck_hash_width_independent; qcheck_hash_iff_equal;
          qcheck_hash_permutation ]
      @ [ Alcotest.test_case "hypergraph hash" `Quick test_hypergraph_hash ] );
    ( "cache:lru",
      [ QCheck_alcotest.to_alcotest qcheck_lru_model;
        Alcotest.test_case "directed" `Quick test_lru_directed ] );
    ( "cache:solve",
      [ Alcotest.test_case "hit bit-identical" `Quick test_hit_bit_identical;
        Alcotest.test_case "warm start bit-identical" `Quick
          test_warm_start_bit_identical;
        QCheck_alcotest.to_alcotest qcheck_cached_solve_bit_identical;
        Alcotest.test_case "poisoned entry dropped" `Quick
          test_poisoned_entry_dropped;
        Alcotest.test_case "clean entry survives audit" `Quick
          test_clean_entry_survives_audit;
        Alcotest.test_case "key separation" `Quick test_key_separation;
        Alcotest.test_case "graph tier" `Quick test_graph_tier ] );
    ( "cache:disk",
      [ Alcotest.test_case "roundtrip" `Quick test_disk_tier_roundtrip;
        Alcotest.test_case "corruption ignored" `Quick
          test_disk_tier_corruption_ignored ] ) ]
