(* Tests for Ps_cfc: happiness, conflict-free colorings, multicolorings,
   ruler and conservative algorithms, exact CF chromatic numbers. *)

module H = Ps_hypergraph.Hypergraph
module Hgen = Ps_hypergraph.Hgen
module Cf = Ps_cfc.Cf_coloring
module Mc = Ps_cfc.Multicolor
module Cg = Ps_cfc.Cf_greedy
module Ce = Ps_cfc.Cf_exact
module Rng = Ps_util.Rng

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let sample () = H.of_edges 5 [ [ 0; 1; 2 ]; [ 2; 3 ]; [ 3; 4; 0 ] ]

(* ------------------------------------------------------------------ *)
(* Happiness of single colorings *)

let test_happy_unique_color () =
  let h = sample () in
  (* edge 0 = {0,1,2} *)
  check_bool "distinct witness" true (Cf.happy h [| 0; 1; 0; -1; -1 |] 0);
  check_bool "all same unhappy" false (Cf.happy h [| 0; 0; 0; -1; -1 |] 0);
  check_bool "uncolored unhappy" false (Cf.happy h (Cf.blank h) 0)

let test_happy_witness_choice () =
  let h = sample () in
  (* In edge {0,1,2} with colors 5,5,7 the only unique color is 7 at v=2 *)
  Alcotest.(check (option (pair int int))) "witness" (Some (2, 7))
    (Cf.unique_color_witness h [| 5; 5; 7; -1; -1 |] 0);
  (* colors 1,2,3: smallest vertex wins the tie-break *)
  Alcotest.(check (option (pair int int))) "smallest vertex" (Some (0, 1))
    (Cf.unique_color_witness h [| 1; 2; 3; -1; -1 |] 0)

let test_happy_partial_coloring_ok () =
  let h = sample () in
  (* only vertex 2 colored: edges 0 and 1 both happy, edge 2 not *)
  let f = [| -1; -1; 4; -1; -1 |] in
  Alcotest.(check (list int)) "happy set" [ 0; 1 ] (Cf.happy_edges h f);
  check "count" 2 (Cf.count_happy h f)

let test_is_conflict_free () =
  let h = sample () in
  check_bool "blank not CF" false (Cf.is_conflict_free h (Cf.blank h));
  (* distinct colors everywhere: trivially CF *)
  check_bool "rainbow CF" true
    (Cf.is_conflict_free h [| 0; 1; 2; 3; 4 |])

let test_verify_exn_message () =
  let h = sample () in
  check_bool "names the unhappy edge" true
    (try
       Cf.verify_exn h [| 0; 0; 0; 1; 2 |];
       (* edge 0 = {0,1,2} all color 0 -> unhappy *)
       false
     with Invalid_argument msg ->
       msg = "Cf_coloring.verify_exn: edge 0 is unhappy")

let test_num_max_colors () =
  check "num" 3 (Cf.num_colors [| 4; 4; 7; -1; 9 |]);
  check "max" 9 (Cf.max_color [| 4; 4; 7; -1; 9 |]);
  check "max of blank" (-1) (Cf.max_color [| -1; -1 |])

let test_single_vertex_edges () =
  let h = H.of_edges 2 [ [ 0 ]; [ 0; 1 ] ] in
  (* {0} happy iff 0 colored *)
  check_bool "singleton unhappy when blank" false (Cf.happy h (Cf.blank h) 0);
  check_bool "singleton happy" true (Cf.happy h [| 3; -1 |] 0)

(* ------------------------------------------------------------------ *)
(* Multicolorings *)

let test_multicolor_basics () =
  let h = sample () in
  let f = Mc.blank h in
  Mc.add_color f 2 5;
  Mc.add_color f 2 9;
  Mc.add_color f 2 5;
  Alcotest.(check (list int)) "set semantics" [ 5; 9 ] (Mc.colors_of f 2);
  check "total colors" 2 (Mc.total_colors f);
  check "max per vertex" 2 (Mc.max_colors_per_vertex f)

let test_multicolor_happy () =
  let h = sample () in
  let f = Mc.blank h in
  (* edge 0 = {0,1,2}: give 0 and 1 the same color, 2 nothing: unhappy *)
  Mc.add_color f 0 1;
  Mc.add_color f 1 1;
  check_bool "duplicated color unhappy" false (Mc.happy h f 0);
  (* now give 0 a second, unique color *)
  Mc.add_color f 0 2;
  check_bool "second color saves it" true (Mc.happy h f 0);
  Alcotest.(check (option (pair int int))) "witness" (Some (0, 2))
    (Mc.unique_witness h f 0)

let test_multicolor_of_single () =
  let f = Mc.of_single [| 3; -1; 0 |] in
  Alcotest.(check (list int)) "lifted" [ 3 ] f.(0);
  Alcotest.(check (list int)) "uncolored" [] f.(1)

let test_multicolor_merge () =
  let a = [| [ 1 ]; [] |] and b = [| [ 1; 2 ]; [ 0 ] |] in
  let m = Mc.merge a b in
  Alcotest.(check (list int)) "union" [ 1; 2 ] m.(0);
  Alcotest.(check (list int)) "other" [ 0 ] m.(1)

let test_multicolor_compact () =
  let h = sample () in
  let f = Mc.blank h in
  Mc.add_color f 0 17;
  Mc.add_color f 2 5;
  Mc.add_color f 2 17;
  let compacted, c = Mc.compact f in
  check "two colors" 2 c;
  Alcotest.(check (list int)) "v0" [ 1 ] compacted.(0);
  Alcotest.(check (list int)) "v2" [ 0; 1 ] compacted.(2);
  (* happiness invariant under the renumbering *)
  List.iter
    (fun e -> check_bool "same happiness" (Mc.happy h f e) (Mc.happy h compacted e))
    (List.init (H.n_edges h) (fun i -> i))

let test_multicolor_single_equivalence () =
  (* A single coloring is CF iff its lift is CF as a multicoloring. *)
  let h = sample () in
  let rainbow = [| 0; 1; 2; 3; 4 |] in
  check_bool "lift CF" true (Mc.is_conflict_free h (Mc.of_single rainbow));
  let bad = [| 0; 0; 0; 0; 0 |] in
  check_bool "lift of bad" false (Mc.is_conflict_free h (Mc.of_single bad))

(* ------------------------------------------------------------------ *)
(* Ruler coloring on interval hypergraphs *)

let test_ruler_sequence () =
  let h = Hgen.all_intervals_of_length ~n:8 ~len:1 in
  let f = Cg.ruler h in
  (* ruler values of 1..8 = 0,1,0,2,0,1,0,3 *)
  Alcotest.(check (array int)) "ruler" [| 0; 1; 0; 2; 0; 1; 0; 3 |] f

let test_ruler_cf_on_intervals () =
  List.iter
    (fun (n, len) ->
      let h = Hgen.all_intervals_of_length ~n ~len in
      check_bool
        (Printf.sprintf "CF on all %d-intervals of [%d]" len n)
        true
        (Cf.is_conflict_free h (Cg.ruler h)))
    [ (8, 3); (16, 5); (31, 7); (20, 1); (20, 20) ]

let test_ruler_cf_on_random_intervals () =
  let rng = Rng.create 1 in
  for _ = 1 to 10 do
    let h = Hgen.random_intervals rng ~n:60 ~m:40 ~min_len:1 ~max_len:20 in
    check_bool "CF" true (Cf.is_conflict_free h (Cg.ruler h))
  done

let test_ruler_color_count () =
  let h = Hgen.all_intervals_of_length ~n:16 ~len:4 in
  let f = Cg.ruler h in
  check_bool "within log bound" true
    (Cf.num_colors f <= Cg.ruler_color_count 16);
  check "log2 16 + 1" 5 (Cg.ruler_color_count 16);
  check "log2 1 + 1" 1 (Cg.ruler_color_count 1);
  check "log2 7 + 1" 3 (Cg.ruler_color_count 7)

let test_ruler_not_cf_on_scattered_edge () =
  (* A non-interval edge can be unhappy: {0, 2} both have ruler color 0. *)
  let h = H.of_edges 3 [ [ 0; 2 ] ] in
  check_bool "unhappy" false (Cf.is_conflict_free h (Cg.ruler h))

(* ------------------------------------------------------------------ *)
(* Conservative greedy CF coloring *)

let test_conservative_cf_on_families () =
  let rng = Rng.create 2 in
  List.iter
    (fun h ->
      let f = Cg.conservative h in
      check_bool "conflict-free" true (Cf.is_conflict_free h f))
    [ sample ();
      Hgen.uniform_random rng ~n:25 ~m:30 ~k:4;
      Hgen.almost_uniform_random rng ~n:30 ~m:25 ~k:3 ~eps:1.0;
      Hgen.random_intervals rng ~n:40 ~m:30 ~min_len:2 ~max_len:8;
      Hgen.sunflower ~n_petals:5 ~core:3 ~petal:2;
      Hgen.disjoint_blocks ~blocks:6 ~size:3;
      Hgen.closed_neighborhoods (Ps_graph.Gen.grid 4 4) ]

let test_conservative_disjoint_blocks_one_color () =
  let h = Hgen.disjoint_blocks ~blocks:5 ~size:4 in
  let f = Cg.conservative h in
  check "one color suffices" 1 (Cf.num_colors f)

let test_conservative_leaves_irrelevant_uncolored () =
  (* Only one edge: a single vertex needs color. *)
  let h = H.of_edges 6 [ [ 0; 1; 2 ] ] in
  let f = Cg.conservative h in
  check_bool "CF" true (Cf.is_conflict_free h f);
  check "only one vertex colored" 1
    (Array.fold_left (fun a c -> if c <> Cf.uncolored then a + 1 else a) 0 f)

let test_conservative_color_bound () =
  let rng = Rng.create 3 in
  let h = Hgen.uniform_random rng ~n:30 ~m:25 ~k:3 in
  let f = Cg.conservative h in
  let primal = Ps_hypergraph.Primal.primal h in
  check_bool "within Δ(primal)+1" true
    (Cf.num_colors f <= Ps_graph.Graph.max_degree primal + 1)

let test_conservative_empty_hypergraph () =
  let h = H.of_edges 4 [] in
  let f = Cg.conservative h in
  check "nothing colored" 0 (Cf.num_colors f);
  check_bool "vacuously CF" true (Cf.is_conflict_free h f)

(* ------------------------------------------------------------------ *)
(* Exact CF chromatic number *)

let test_cf_exact_known () =
  (* Disjoint blocks: 1 color. *)
  check "blocks" 1 (Ce.cf_number (Hgen.disjoint_blocks ~blocks:3 ~size:2));
  (* Empty hypergraph: 0 colors. *)
  check "edgeless" 0 (Ce.cf_number (H.of_edges 3 []));
  (* Two nested intervals sharing vertices need 2 when they overlap in a
     way that one color cannot serve both: {0,1} and {0,1,2}: color 0 with
     c: edge {0,1} happy needs unique in {0,1}; assign f(0)=0 only: edge1
     happy (0 unique), edge2 happy (0 unique) -> actually 1 color! *)
  check "nested" 1 (Ce.cf_number (H.of_edges 3 [ [ 0; 1 ]; [ 0; 1; 2 ] ]))

let test_cf_exact_needs_two () =
  (* Edges {0,1}, {1,2}, {0,1,2}: with one color c, to make {0,1} happy
     exactly one of 0,1 has c; similarly {1,2}; and {0,1,2} needs exactly
     one of the three. Coloring only vertex 1 makes all three happy! So
     still 1. Force 2 by a Fano-like overlap: edges {0,1},{0,2},{1,2},
     {0,1,2}: one color: happy pairs need one endpoint each; {0,1,2} needs
     exactly one colored overall or a unique... try f = {0}: {1,2} unhappy.
     f={0,1}: {0,1} unhappy. So cf_number = 2. *)
  let h = H.of_edges 3 [ [ 0; 1 ]; [ 0; 2 ]; [ 1; 2 ]; [ 0; 1; 2 ] ] in
  check "triangle+face" 2 (Ce.cf_number h)

let test_cf_exact_is_colorable_witness () =
  let h = sample () in
  (match Ce.is_colorable h 2 with
  | Some f ->
      check_bool "witness valid" true (Cf.is_conflict_free h f);
      check_bool "within palette" true (Cf.max_color f < 2)
  | None ->
      (* if 2 is not enough the optimum must exceed 2 *)
      check_bool "needs more" true (Ce.cf_number h > 2));
  check_bool "k=n always colorable" true
    (Ce.is_colorable h (H.n_vertices h) <> None)

let test_cf_exact_zero_colors () =
  let h = sample () in
  Alcotest.(check bool) "0 colors impossible with edges" true
    (Ce.is_colorable h 0 = None)

let test_cf_exact_matches_heuristics_upper () =
  let rng = Rng.create 4 in
  for _ = 1 to 5 do
    let h = Hgen.uniform_random rng ~n:8 ~m:6 ~k:3 in
    let opt = Ce.cf_number h in
    let greedy_colors = Cf.num_colors (Cg.conservative h) in
    check_bool "optimum <= greedy" true (opt <= greedy_colors)
  done

(* ------------------------------------------------------------------ *)
(* Tightness: CF number of all intervals = floor(log2 n) + 1 *)

let test_all_intervals_cf_number_tight () =
  (* The ruler coloring achieves floor(log2 n)+1 on all-intervals, and
     exhaustive search certifies nothing smaller works: the log n in the
     paper's "k = polylog" premise is genuinely necessary, not an
     artifact of the algorithms. *)
  List.iter
    (fun n ->
      let h = Hgen.all_intervals ~n in
      check
        (Printf.sprintf "m for n=%d" n)
        (n * (n + 1) / 2)
        (H.n_edges h);
      let expected = Cg.ruler_color_count n in
      check (Printf.sprintf "cf_number n=%d" n) expected (Ce.cf_number h);
      (* and the ruler witnesses the upper bound *)
      let ruler = Cg.ruler h in
      check_bool "ruler CF" true (Cf.is_conflict_free h ruler);
      check_bool "ruler optimal" true (Cf.num_colors ruler <= expected))
    [ 1; 2; 3; 4; 5; 7; 8 ]

(* ------------------------------------------------------------------ *)
(* qcheck properties *)

let arbitrary_hg =
  QCheck.make
    ~print:(fun (seed, n, m, k) ->
      Printf.sprintf "hg seed=%d n=%d m=%d k=%d" seed n m k)
    QCheck.Gen.(
      quad (int_bound 1000) (int_range 3 20) (int_range 1 15) (int_range 1 4))

let hg_of (seed, n, m, k) =
  Hgen.almost_uniform_random (Rng.create seed) ~n ~m ~k:(min k n) ~eps:1.0

let prop_conservative_always_cf =
  QCheck.Test.make ~count:100 ~name:"conservative greedy is conflict-free"
    arbitrary_hg (fun params ->
      let h = hg_of params in
      Cf.is_conflict_free h (Cg.conservative h))

let prop_ruler_cf_on_intervals =
  QCheck.Test.make ~count:100 ~name:"ruler is CF on random intervals"
    (QCheck.make
       ~print:(fun (seed, n, m) -> Printf.sprintf "%d %d %d" seed n m)
       QCheck.Gen.(
         triple (int_bound 1000) (int_range 2 50) (int_range 1 30)))
    (fun (seed, n, m) ->
      let rng = Rng.create seed in
      let h = Hgen.random_intervals rng ~n ~m ~min_len:1 ~max_len:n in
      Cf.is_conflict_free h (Cg.ruler h))

let prop_happy_monotone_under_new_unique_colors =
  QCheck.Test.make ~count:100
    ~name:"adding a globally fresh color never unhappies an edge"
    arbitrary_hg (fun params ->
      let h = hg_of params in
      if H.n_vertices h = 0 then true
      else begin
        let f = Cg.conservative h in
        let before = Cf.count_happy h f in
        (* recolor an uncolored vertex (if any) with a fresh color *)
        let fresh = Cf.max_color f + 1 in
        let idx =
          Array.to_list (Array.mapi (fun i c -> (i, c)) f)
          |> List.find_opt (fun (_, c) -> c = Cf.uncolored)
        in
        match idx with
        | None -> true
        | Some (v, _) ->
            f.(v) <- fresh;
            Cf.count_happy h f >= before
      end)

let prop_multicolor_lift_preserves_happiness =
  QCheck.Test.make ~count:100
    ~name:"single-coloring happiness = lifted multicolor happiness"
    arbitrary_hg (fun params ->
      let h = hg_of params in
      let f = Cg.conservative h in
      let mc = Mc.of_single f in
      List.for_all
        (fun e -> Cf.happy h f e = Mc.happy h mc e)
        (List.init (H.n_edges h) (fun e -> e)))

let props =
  List.map QCheck_alcotest.to_alcotest
    [ prop_conservative_always_cf;
      prop_ruler_cf_on_intervals;
      prop_happy_monotone_under_new_unique_colors;
      prop_multicolor_lift_preserves_happiness ]

let suites =
  [ ( "cfc.happiness",
      [ Alcotest.test_case "unique color" `Quick test_happy_unique_color;
        Alcotest.test_case "witness choice" `Quick test_happy_witness_choice;
        Alcotest.test_case "partial coloring" `Quick
          test_happy_partial_coloring_ok;
        Alcotest.test_case "is conflict free" `Quick test_is_conflict_free;
        Alcotest.test_case "verify message" `Quick test_verify_exn_message;
        Alcotest.test_case "color counting" `Quick test_num_max_colors;
        Alcotest.test_case "single-vertex edges" `Quick
          test_single_vertex_edges ] );
    ( "cfc.multicolor",
      [ Alcotest.test_case "basics" `Quick test_multicolor_basics;
        Alcotest.test_case "happiness" `Quick test_multicolor_happy;
        Alcotest.test_case "of_single" `Quick test_multicolor_of_single;
        Alcotest.test_case "merge" `Quick test_multicolor_merge;
        Alcotest.test_case "compact" `Quick test_multicolor_compact;
        Alcotest.test_case "single equivalence" `Quick
          test_multicolor_single_equivalence ] );
    ( "cfc.ruler",
      [ Alcotest.test_case "sequence" `Quick test_ruler_sequence;
        Alcotest.test_case "CF on interval families" `Quick
          test_ruler_cf_on_intervals;
        Alcotest.test_case "CF on random intervals" `Quick
          test_ruler_cf_on_random_intervals;
        Alcotest.test_case "color count" `Quick test_ruler_color_count;
        Alcotest.test_case "scattered edge fails" `Quick
          test_ruler_not_cf_on_scattered_edge ] );
    ( "cfc.conservative",
      [ Alcotest.test_case "CF on families" `Quick
          test_conservative_cf_on_families;
        Alcotest.test_case "disjoint blocks" `Quick
          test_conservative_disjoint_blocks_one_color;
        Alcotest.test_case "sparse coloring" `Quick
          test_conservative_leaves_irrelevant_uncolored;
        Alcotest.test_case "color bound" `Quick test_conservative_color_bound;
        Alcotest.test_case "empty hypergraph" `Quick
          test_conservative_empty_hypergraph ] );
    ( "cfc.exact",
      [ Alcotest.test_case "known values" `Quick test_cf_exact_known;
        Alcotest.test_case "needs two" `Quick test_cf_exact_needs_two;
        Alcotest.test_case "witness" `Quick test_cf_exact_is_colorable_witness;
        Alcotest.test_case "zero colors" `Quick test_cf_exact_zero_colors;
        Alcotest.test_case "optimum <= greedy" `Quick
          test_cf_exact_matches_heuristics_upper;
        Alcotest.test_case "all-intervals tight" `Quick
          test_all_intervals_cf_number_tight ] );
    ("cfc.properties", props) ]
