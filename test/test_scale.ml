(* Tests for the at-scale machinery: width-aware CSR stores, the
   zero-copy view and the to_csr copy contract, degree-sorted layout,
   sharded parallel cursors, streaming Gio/Hio, and the huge-instance
   generators.  The int-array store is the oracle throughout: every
   int32 path must produce a Graph.equal result. *)

module G = Ps_graph.Graph
module Gen = Ps_graph.Gen
module Gio = Ps_graph.Gio
module H = Ps_hypergraph.Hypergraph
module Hio = Ps_hypergraph.Hio
module Hgen = Ps_hypergraph.Hgen
module Cg = Ps_core.Conflict_graph
module P = Ps_util.Parallel
module Is = Ps_maxis.Independent_set
module Greedy = Ps_maxis.Greedy
module Cw = Ps_maxis.Caro_wei
module Rng = Ps_util.Rng

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* to_csr copy contract and csr_view *)

let test_to_csr_copies () =
  (* The mli pins this: to_csr returns fresh, exact-length int arrays —
     mutating them must not perturb the graph. *)
  let g = Gen.gnp (Rng.create 3) 30 0.2 in
  let reference = Gen.gnp (Rng.create 3) 30 0.2 in
  let offsets, adj = G.to_csr g in
  check "offsets exact length" (G.n_vertices g + 1) (Array.length offsets);
  check "adj exact length" (2 * G.n_edges g) (Array.length adj);
  offsets.(0) <- 999;
  if Array.length adj > 0 then adj.(0) <- 999;
  check_bool "graph unchanged by mutation" true (G.equal g reference);
  let o2, a2 = G.to_csr g in
  check_bool "second copy pristine" true (o2.(0) = 0 && (a2 = snd (G.to_csr reference)))

let test_to_csr_widens_i32 () =
  (* An int32-backed graph still hands out plain int arrays. *)
  let g = Gen.gnp (Rng.create 4) 25 0.3 in
  let g32 = G.with_width g `Int32 in
  check_bool "is i32" true (G.width g32 = `Int32);
  let o, a = G.to_csr g and o32, a32 = G.to_csr g32 in
  check_bool "same csr either width" true (o = o32 && a = a32)

let test_csr_view_zero_copy () =
  let g = Gen.gnp (Rng.create 5) 20 0.3 in
  let v = G.csr_view g in
  let v' = G.csr_view g in
  check_bool "offsets aliased, not copied" true (v.G.v_offsets == v'.G.v_offsets);
  check_bool "exact graph flagged exact" true v.G.v_exact;
  check "store length" (2 * G.n_edges g) v.G.v_store_len;
  (* The getter must read the same adjacency the accessors expose. *)
  let ok = ref true in
  for x = 0 to G.n_vertices g - 1 do
    let row = G.neighbors g x in
    let lo = v.G.v_offsets.(x) in
    Array.iteri (fun i u -> if v.G.v_get (lo + i) <> u then ok := false) row
  done;
  check_bool "view getter matches neighbors" true !ok

let test_csr_view_prefix () =
  (* Arena-backed prefix: spare capacity visible as store_len slack. *)
  let offsets = [| 0; 1; 3; 4; 99; 99 |] in
  let adj = [| 1; 0; 2; 1; 77; 77 |] in
  let g = G.of_csr_prefix ~validate:true 3 ~offsets ~adj in
  let v = G.csr_view g in
  check_bool "prefix flagged inexact" true (not v.G.v_exact);
  check "physical store length" 6 v.G.v_store_len;
  check "logical arcs" 4 v.G.v_offsets.(3);
  check_bool "certifier accepts prefix" true (Ps_check.Check_graph.csr_ok g)

let test_check_accepts_i32 () =
  let g = G.with_width (Gen.gnp (Rng.create 6) 40 0.15) `Int32 in
  check_bool "certifier audits i32 store" true (Ps_check.Check_graph.csr_ok g)

(* ------------------------------------------------------------------ *)
(* Width round-trips and degree-sorted layout *)

let test_width_roundtrip () =
  let g = Gen.gnp (Rng.create 7) 50 0.1 in
  let g32 = G.with_width g `Int32 in
  check_bool "widths differ" true (G.width g = `Int && G.width g32 = `Int32);
  check_bool "equal across widths" true (G.equal g g32);
  check_bool "narrow then widen is identity" true
    (G.equal g (G.with_width g32 `Int));
  check_bool "same width returns same graph" true (G.with_width g `Int == g)

let perm_valid n perm =
  Array.length perm = n
  &&
  let seen = Array.make n false in
  Array.for_all
    (fun p ->
      if p < 0 || p >= n || seen.(p) then false
      else begin
        seen.(p) <- true;
        true
      end)
    perm

let test_degree_sorted () =
  let g = Gen.gnp (Rng.create 8) 60 0.1 in
  let g', perm = G.degree_sorted g in
  check_bool "perm is a permutation" true (perm_valid (G.n_vertices g) perm);
  check "edges preserved" (G.n_edges g) (G.n_edges g');
  let ok = ref true in
  for i = 1 to G.n_vertices g' - 1 do
    if G.degree g' i > G.degree g' (i - 1) then ok := false
  done;
  check_bool "degrees non-increasing" true !ok;
  (* Every relabeled edge maps back to an original edge, so g' is exactly
     g under perm. *)
  G.iter_edges g' (fun u v ->
      if not (G.has_edge g perm.(u) perm.(v)) then ok := false);
  check_bool "edges map back through perm" true !ok;
  let g32', _ = G.degree_sorted (G.with_width g `Int32) in
  check_bool "width preserved" true (G.width g32' = `Int32);
  check_bool "layout independent of width" true (G.equal g' g32')

(* ------------------------------------------------------------------ *)
(* Sharded cursor *)

let test_sharded_cursor_coverage () =
  (* Domain 0 drains its shard then steals the rest: with nobody else
     pulling, it must see every index exactly once. *)
  let cur = P.Sharded_cursor.create ~domains:3 ~chunk:7 ~lo:5 ~hi:105 () in
  let seen = Array.make 105 0 in
  P.Sharded_cursor.drain cur 0 (fun i -> seen.(i) <- seen.(i) + 1);
  let ok = ref true in
  for i = 0 to 104 do
    let want = if i >= 5 then 1 else 0 in
    if seen.(i) <> want then ok := false
  done;
  check_bool "each index claimed exactly once (with stealing)" true !ok;
  check_bool "drained cursor yields None" true
    (P.Sharded_cursor.next cur 1 = None)

let test_sharded_cursor_split_coverage () =
  (* Interleaved pulls from every domain still partition the range. *)
  let domains = 4 in
  let cur = P.Sharded_cursor.create ~domains ~chunk:3 ~lo:0 ~hi:50 () in
  let seen = Array.make 50 0 in
  let live = ref domains in
  let exhausted = Array.make domains false in
  while !live > 0 do
    for d = 0 to domains - 1 do
      if not exhausted.(d) then
        match P.Sharded_cursor.next cur d with
        | Some (lo, hi) ->
            for i = lo to hi - 1 do
              seen.(i) <- seen.(i) + 1
            done
        | None ->
            exhausted.(d) <- true;
            decr live
    done
  done;
  check_bool "interleaved claims partition the range" true
    (Array.for_all (fun c -> c = 1) seen)

let test_sharded_cursor_empty_and_invalid () =
  let cur = P.Sharded_cursor.create ~domains:2 ~lo:3 ~hi:3 () in
  check_bool "empty range" true (P.Sharded_cursor.next cur 0 = None);
  let raises f =
    try
      ignore (f ());
      false
    with Invalid_argument _ -> true
  in
  check_bool "domains < 1 rejected" true
    (raises (fun () -> P.Sharded_cursor.create ~domains:0 ~lo:0 ~hi:1 ()));
  check_bool "chunk < 1 rejected" true
    (raises (fun () ->
         P.Sharded_cursor.create ~domains:1 ~chunk:0 ~lo:0 ~hi:1 ()));
  check_bool "hi < lo rejected" true
    (raises (fun () -> P.Sharded_cursor.create ~domains:1 ~lo:2 ~hi:1 ()))

let test_effective_domains_clamps () =
  (* The one clamping rule: explicit requests honored then clamped to
     [1, max slices 1]; requested = 0 scales by auto_units_per_domain. *)
  check "explicit honored" 5
    (P.effective_domains ~requested:5 ~units:1 ~slices:100);
  check "clamped to slices" 2
    (P.effective_domains ~requested:5 ~units:1_000_000 ~slices:2);
  check "at least one" 1 (P.effective_domains ~requested:0 ~units:0 ~slices:0);
  check "auto under one quantum stays sequential" 1
    (P.effective_domains ~requested:0 ~units:(P.auto_units_per_domain - 1)
       ~slices:1000)

(* ------------------------------------------------------------------ *)
(* Streaming I/O at scale *)

let test_gio_streaming_roundtrip_1e6 () =
  (* ~10^6-edge round trip through the streaming writer and parser; the
     read-back lands in the auto (int32) store and must equal the
     generator's graph across widths. *)
  let n = 2000 in
  let g = Gen.huge_gnp (Rng.create 11) n 0.5 in
  check_bool "instance is ~1e6 edges" true (G.n_edges g > 900_000);
  check_bool "auto store is i32" true (G.width g = `Int32);
  let path = Filename.temp_file "pslocal_scale" ".el" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Gio.write_file path g;
      let back = Gio.read_file path in
      check_bool "roundtrip equal" true (G.equal g back);
      check_bool "roundtrip equal to int oracle" true
        (G.equal (G.with_width g `Int) back))

let test_gio_write_edges_file_stream () =
  (* Generator -> sink -> parser without materializing a graph on the
     write side; duplicates collapse on read, matching Gen.rmat. *)
  let scale = 10 and edges = 4000 in
  let path = Filename.temp_file "pslocal_scale" ".el" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Gio.write_edges_file path ~n:(1 lsl scale) ~m:edges (fun add ->
          Gen.iter_rmat (Rng.create 12) ~scale ~edges (fun u v -> add u v));
      let back = Gio.read_file path in
      let direct = Gen.rmat (Rng.create 12) ~scale ~edges in
      check_bool "streamed file = collected graph" true (G.equal back direct))

let test_hio_streaming_roundtrip () =
  let h =
    Hgen.almost_uniform_random (Rng.create 13) ~n:4000 ~m:50_000 ~k:6 ~eps:0.5
  in
  let path = Filename.temp_file "pslocal_scale" ".hg" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Hio.write_file path h;
      check_bool "hypergraph roundtrip" true (H.equal h (Hio.read_file path)))

let test_of_member_arrays_normalizes () =
  (* Takes ownership: unsorted, duplicated members must normalize to the
     of_edges result. *)
  let a = H.of_member_arrays 5 [| [| 3; 1; 3; 0 |]; [| 4; 4; 2 |] |] in
  let b = H.of_edges 5 [ [ 0; 1; 3 ]; [ 2; 4 ] ] in
  check_bool "normalized equal" true (H.equal a b)

(* ------------------------------------------------------------------ *)
(* Huge-instance generators *)

let test_iter_gnp_matches_gnp () =
  let n = 300 and p = 0.05 in
  let g = Gen.gnp (Rng.create 14) n p in
  let count = ref 0 in
  let ok = ref true in
  Gen.iter_gnp (Rng.create 14) n p (fun u v ->
      incr count;
      if not (G.has_edge g u v) then ok := false);
  check "same edge count" (G.n_edges g) !count;
  check_bool "same edges" true !ok

let test_huge_gnp_equals_gnp () =
  let n = 400 and p = 0.03 in
  check_bool "same graph for same seed" true
    (G.equal (Gen.gnp (Rng.create 15) n p) (Gen.huge_gnp (Rng.create 15) n p))

let test_rmat_well_formed () =
  let g = Gen.rmat (Rng.create 16) ~scale:11 ~edges:20_000 in
  check "vertex count is 2^scale" (1 lsl 11) (G.n_vertices g);
  check_bool "duplicates collapsed" true (G.n_edges g <= 20_000);
  check_bool "skewed: emitted a nontrivial graph" true (G.n_edges g > 10_000);
  check_bool "certified csr" true (Ps_check.Check_graph.csr_ok g);
  let emitted = ref 0 in
  Gen.iter_rmat (Rng.create 16) ~scale:11 ~edges:20_000 (fun u v ->
      incr emitted;
      if u = v || u < 0 || v < 0 || u >= 1 lsl 11 || v >= 1 lsl 11 then
        Alcotest.fail "rmat pair out of spec");
  check "iter_rmat emits exactly the requested pairs" 20_000 !emitted

(* ------------------------------------------------------------------ *)
(* qcheck properties *)

let arbitrary_gnp =
  QCheck.make
    ~print:(fun (seed, n, p) ->
      Printf.sprintf "gnp seed=%d n=%d p=%d%%" seed n p)
    QCheck.Gen.(triple (int_bound 1000) (int_range 1 40) (int_bound 100))

let graph_of (seed, n, p) =
  Gen.gnp (Rng.create seed) n (float_of_int p /. 100.0)

let prop_unnormalized_pairs_oracle =
  QCheck.Test.make ~count:100
    ~name:"of_unnormalized_pairs = of_edges (both widths)" arbitrary_gnp
    (fun ((seed, n, _) as params) ->
      let g = graph_of params in
      (* Re-emit each edge in a random orientation, with random
         duplicates, in scrambled order. *)
      let rng = Rng.create (seed + 77) in
      let pairs = ref [] in
      G.iter_edges g (fun u v ->
          let emit () =
            pairs :=
              (if Rng.bernoulli rng 0.5 then (u, v) else (v, u)) :: !pairs
          in
          emit ();
          if Rng.bernoulli rng 0.3 then emit ());
      let pairs = Array.of_list !pairs in
      let len = Array.length pairs in
      let u = Array.map fst pairs and v = Array.map snd pairs in
      let from_int = G.of_unnormalized_pairs ~width:`Int n ~u ~v ~len in
      let from_i32 = G.of_unnormalized_pairs ~width:`Int32 n ~u ~v ~len in
      G.equal g from_int && G.equal g from_i32
      && G.width from_int = `Int
      && G.width from_i32 = `Int32)

let prop_degree_sorted_layout_solvers =
  QCheck.Test.make ~count:100
    ~name:"degree-sorted layout solvers stay valid and maximal"
    arbitrary_gnp (fun ((seed, _, _) as params) ->
      let g = graph_of params in
      let valid s = Is.is_independent g s && Is.is_maximal g s in
      valid (Greedy.min_degree ~layout:`Degree_sorted g)
      && valid (Cw.run_maximal ~layout:`Degree_sorted (Rng.create seed) g)
      && Is.is_independent g (Cw.run ~layout:`Degree_sorted (Rng.create seed) g))

let arbitrary_hypergraph =
  QCheck.make
    ~print:(fun (seed, n, m) -> Printf.sprintf "hg seed=%d n=%d m=%d" seed n m)
    QCheck.Gen.(triple (int_bound 1000) (int_range 5 14) (int_range 1 10))

let prop_conflict_graph_width_oracle =
  QCheck.Test.make ~count:30
    ~name:"conflict graph: i32 store = int oracle across domain counts"
    arbitrary_hypergraph (fun (seed, n, m) ->
      let h =
        Hgen.almost_uniform_random (Rng.create seed) ~n ~m ~k:3 ~eps:0.5
      in
      let k = 2 in
      List.for_all
        (fun domains ->
          let a = (Cg.build ~domains ~width:`Int h ~k).Cg.graph in
          let b = (Cg.build ~domains ~width:`Int32 h ~k).Cg.graph in
          let auto = (Cg.build ~domains h ~k).Cg.graph in
          G.equal a b && G.equal a auto
          && (G.n_vertices a = 0 || G.width b = `Int32))
        [ 1; 2; 0 ])

let prop_incremental_width_oracle =
  QCheck.Test.make ~count:30
    ~name:"incremental compaction: i32 arena = int arena" arbitrary_hypergraph
    (fun (seed, n, m) ->
      let h =
        Hgen.almost_uniform_random (Rng.create seed) ~n ~m ~k:3 ~eps:0.5
      in
      let k = 2 in
      let a = Cg.Incremental.create ~width:`Int h ~k in
      let b = Cg.Incremental.create ~width:`Int32 h ~k in
      let retired =
        List.filteri (fun i _ -> i mod 2 = 0) (List.init m Fun.id)
      in
      Cg.Incremental.retire_edges a retired;
      Cg.Incremental.retire_edges b retired;
      Cg.Incremental.compact a;
      Cg.Incremental.compact b;
      G.equal (Cg.Incremental.graph a) (Cg.Incremental.graph b))

let props =
  List.map QCheck_alcotest.to_alcotest
    [ prop_unnormalized_pairs_oracle;
      prop_degree_sorted_layout_solvers;
      prop_conflict_graph_width_oracle;
      prop_incremental_width_oracle ]

let suites =
  [ ( "scale.csr",
      [ Alcotest.test_case "to_csr copies" `Quick test_to_csr_copies;
        Alcotest.test_case "to_csr widens i32" `Quick test_to_csr_widens_i32;
        Alcotest.test_case "csr_view zero-copy" `Quick
          test_csr_view_zero_copy;
        Alcotest.test_case "csr_view prefix" `Quick test_csr_view_prefix;
        Alcotest.test_case "check audits i32" `Quick test_check_accepts_i32;
        Alcotest.test_case "width roundtrip" `Quick test_width_roundtrip;
        Alcotest.test_case "degree sorted" `Quick test_degree_sorted ] );
    ( "scale.cursor",
      [ Alcotest.test_case "coverage with stealing" `Quick
          test_sharded_cursor_coverage;
        Alcotest.test_case "interleaved partition" `Quick
          test_sharded_cursor_split_coverage;
        Alcotest.test_case "empty and invalid" `Quick
          test_sharded_cursor_empty_and_invalid;
        Alcotest.test_case "effective_domains clamps" `Quick
          test_effective_domains_clamps ] );
    ( "scale.io",
      [ Alcotest.test_case "gio 1e6-edge roundtrip" `Quick
          test_gio_streaming_roundtrip_1e6;
        Alcotest.test_case "write_edges_file stream" `Quick
          test_gio_write_edges_file_stream;
        Alcotest.test_case "hio streaming roundtrip" `Quick
          test_hio_streaming_roundtrip;
        Alcotest.test_case "of_member_arrays normalizes" `Quick
          test_of_member_arrays_normalizes ] );
    ( "scale.gen",
      [ Alcotest.test_case "iter_gnp matches gnp" `Quick
          test_iter_gnp_matches_gnp;
        Alcotest.test_case "huge_gnp equals gnp" `Quick
          test_huge_gnp_equals_gnp;
        Alcotest.test_case "rmat well-formed" `Quick test_rmat_well_formed ]
    );
    ("scale.properties", props) ]
