(* The shard tier: binary codec (qcheck round-trip + error paths),
   quota buckets, request batching, the metrics exporter, stale-socket
   recovery, CLI contract, and live multi-process integration. *)

module Json = Ps_server.Json
module P = Ps_server.Protocol
module B = Ps_server.Protocol.Binary
module Engine = Ps_server.Engine
module Server = Ps_server.Server
module Frame = Ps_shard.Frame
module Quota = Ps_shard.Quota
module Batch = Ps_shard.Batch
module Metrics = Ps_shard.Metrics
module Router = Ps_shard.Router
module Supervisor = Ps_shard.Supervisor

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.equal (String.sub hay i nn) needle || go (i + 1)) in
  go 0

let check_contains what hay needle =
  if not (contains hay needle) then
    Alcotest.failf "%s: expected %S in:\n%s" what needle hay

(* ------------------------------------------------------------------ *)
(* Binary codec: qcheck round-trips *)

let json_value_arb =
  let open QCheck.Gen in
  let scalar =
    oneof
      [ return Json.Null;
        map (fun b -> Json.Bool b) bool;
        map (fun i -> Json.Int i) int;
        (* Quarters: exact in binary64, exercises the float path without
           NaN (which breaks structural equality). *)
        map (fun i -> Json.Float (float_of_int i /. 4.0)) int;
        map (fun s -> Json.Str s) (string_size (int_bound 24)) ]
  in
  let value =
    sized
      (fix (fun self n ->
           if n <= 0 then scalar
           else
             frequency
               [ (3, scalar);
                 (1, map (fun l -> Json.List l)
                       (list_size (int_bound 4) (self (n / 2))));
                 (1, map (fun l -> Json.Obj l)
                       (list_size (int_bound 4)
                          (pair (string_size (int_bound 8)) (self (n / 2))))) ]))
  in
  QCheck.make ~print:Json.to_string value

let prop_binary_roundtrip =
  QCheck.Test.make ~count:500 ~name:"binary codec: of_bytes ∘ to_bytes = id"
    json_value_arb (fun v ->
      match B.of_bytes (B.to_bytes v) with
      | Ok v' -> Json.equal v v'
      | Error _ -> false)

let prop_frame_roundtrip =
  QCheck.Test.make ~count:200
    ~name:"binary codec: frame = header + payload, length honest"
    json_value_arb (fun v ->
      let f = B.frame v in
      let payload = B.to_bytes v in
      match B.frame_length f with
      | Error _ -> false
      | Ok n ->
          n = String.length payload
          && String.length f = B.header_bytes + n
          && String.equal (String.sub f B.header_bytes n) payload
          &&
          match B.of_bytes (String.sub f B.header_bytes n) with
          | Ok v' -> Json.equal v v'
          | Error _ -> false)

(* An arbitrary valid request envelope (methods without payloads keep
   the comparison total: calls embedding solver closures can't be
   compared structurally). *)
let envelope_arb =
  let open QCheck.Gen in
  let id =
    oneof
      [ return Json.Null;
        map (fun i -> Json.Int i) int;
        map (fun s -> Json.Str s) (string_size ~gen:printable (int_bound 12)) ]
  in
  let gen =
    map
      (fun (id, meth, timeout, tenant) ->
        let params =
          (match timeout with
          | Some t -> [ ("timeout_ms", Json.Int t) ]
          | None -> [])
          @
          match tenant with
          | Some s -> [ ("tenant", Json.Str s) ]
          | None -> []
        in
        Json.Obj
          ([ ("id", id); ("method", Json.Str meth) ]
          @ match params with [] -> [] | _ -> [ ("params", Json.Obj params) ]))
      (quad id
         (oneofl [ "ping"; "stats" ])
         (opt (int_range 1 100000))
         (opt (string_size ~gen:printable (int_bound 10))))
  in
  QCheck.make ~print:Json.to_string gen

let same_request (a : P.request) (b : P.request) =
  Json.equal a.P.id b.P.id
  && (match (a.P.timeout_ms, b.P.timeout_ms) with
     | None, None -> true
     | Some x, Some y -> x = y
     | _ -> false)
  && (match (a.P.tenant, b.P.tenant) with
     | None, None -> true
     | Some x, Some y -> String.equal x y
     | _ -> false)
  && String.equal (P.method_name a.P.call) (P.method_name b.P.call)

let prop_cross_codec =
  QCheck.Test.make ~count:500
    ~name:"cross-codec: JSON line and binary frame decode to the same request"
    envelope_arb (fun env ->
      match
        ( P.parse_request (Json.to_string env),
          B.decode_request (B.to_bytes env) )
      with
      | Ok a, Ok b -> same_request a b
      | Error (ida, ea), Error (idb, eb) ->
          (* Rejections must agree too (same code, correlating id). *)
          Json.equal ida idb && ea.P.code = eb.P.code
      | _ -> false)

(* ------------------------------------------------------------------ *)
(* Binary codec: error paths.  Never an exception, always typed. *)

let u32 n =
  let b = Bytes.create 4 in
  Bytes.set_int32_be b 0 (Int32.of_int n);
  Bytes.to_string b

let ic_of_string s =
  let r, w = Unix.pipe () in
  let oc = Unix.out_channel_of_descr w in
  output_string oc s;
  close_out oc;
  Unix.in_channel_of_descr r

let with_ic s f =
  let ic = ic_of_string s in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> f ic)

let event_code = function
  | Frame.Poisoned e -> Some e.P.code
  | Frame.Request (Error (_, e)) -> Some e.P.code
  | Frame.Request (Ok _) | Frame.Eof -> None

let test_truncated_header () =
  with_ic "\xb5\x00\x00" (fun ic ->
      match Frame.read_event ic ~framing:Frame.Binary ~max_bytes:4096 with
      | Frame.Poisoned e ->
          check_bool "parse_error" true (e.P.code = P.Parse_error);
          check_contains "message" e.P.message "header"
      | _ -> Alcotest.fail "expected Poisoned")

let test_mid_frame_eof () =
  with_ic ("\xb5" ^ u32 100 ^ "abc") (fun ic ->
      match Frame.read_event ic ~framing:Frame.Binary ~max_bytes:4096 with
      | Frame.Poisoned e ->
          check_bool "parse_error" true (e.P.code = P.Parse_error);
          check_contains "message" e.P.message "payload"
      | _ -> Alcotest.fail "expected Poisoned")

let test_oversized_prefix () =
  with_ic ("\xb5" ^ u32 100_000 ^ "x") (fun ic ->
      match Frame.read_event ic ~framing:Frame.Binary ~max_bytes:4096 with
      | Frame.Poisoned e ->
          check_bool "payload_too_large" true (e.P.code = P.Payload_too_large)
      | _ -> Alcotest.fail "expected Poisoned")

let test_json_on_binary_port () =
  with_ic "{\"id\":1,\"method\":\"ping\"}\n" (fun ic ->
      match Frame.read_event ic ~framing:Frame.Binary ~max_bytes:4096 with
      | Frame.Poisoned e ->
          check_bool "parse_error" true (e.P.code = P.Parse_error);
          check_contains "message" e.P.message "JSON"
      | _ -> Alcotest.fail "expected Poisoned")

let test_binary_on_json_port () =
  (* The reverse direction: a frame at a JSON port is a recoverable
     parse error (input_line finds no valid JSON), not a crash. *)
  let frame = B.frame (Json.Obj [ ("id", Json.Int 1) ]) ^ "\n" in
  with_ic frame (fun ic ->
      match Frame.read_event ic ~framing:Frame.Json_lines ~max_bytes:4096 with
      | Frame.Request (Error (_, e)) ->
          check_bool "parse_error" true (e.P.code = P.Parse_error)
      | _ -> Alcotest.fail "expected Request (Error _)")

let test_clean_eof () =
  with_ic "" (fun ic ->
      match Frame.read_event ic ~framing:Frame.Binary ~max_bytes:4096 with
      | Frame.Eof -> ()
      | _ -> Alcotest.fail "expected Eof");
  with_ic "" (fun ic ->
      match Frame.read_event ic ~framing:Frame.Json_lines ~max_bytes:4096 with
      | Frame.Eof -> ()
      | _ -> Alcotest.fail "expected Eof")

let expect_decode_error what bytes needle =
  match B.of_bytes bytes with
  | Ok _ -> Alcotest.failf "%s: expected Error" what
  | Error msg -> check_contains what msg needle

let test_of_bytes_errors () =
  expect_decode_error "unknown tag" "x" "unknown tag";
  expect_decode_error "trailing garbage" "nn" "trailing garbage";
  expect_decode_error "truncated string" ("s" ^ u32 16 ^ "abc") "truncated";
  expect_decode_error "negative length" "s\xff\xff\xff\xff" "negative";
  expect_decode_error "truncated int" "i\x00\x00" "truncated";
  expect_decode_error "list overrun" ("l" ^ u32 1000) "overruns";
  (let max_int64 = "i\x7f\xff\xff\xff\xff\xff\xff\xff" in
   expect_decode_error "int out of range" max_int64 "out of range");
  (let buf = Buffer.create 2048 in
   for _ = 1 to 300 do
     Buffer.add_char buf 'l';
     Buffer.add_string buf (u32 1)
   done;
   Buffer.add_char buf 'n';
   expect_decode_error "over-deep nesting" (Buffer.contents buf) "nesting")

let test_decode_request_ok () =
  let env =
    Json.Obj
      [ ("id", Json.Int 7);
        ("method", Json.Str "ping");
        ("params", Json.Obj [ ("tenant", Json.Str "acme") ]) ]
  in
  match B.decode_request (B.to_bytes env) with
  | Ok req ->
      check_bool "id" true (Json.equal req.P.id (Json.Int 7));
      check_bool "tenant" true
        (match req.P.tenant with Some t -> String.equal t "acme" | None -> false);
      Alcotest.(check string) "method" "ping" (P.method_name req.P.call)
  | Error _ -> Alcotest.fail "expected Ok"

let test_read_event_valid_frame () =
  let env = Json.Obj [ ("id", Json.Int 1); ("method", Json.Str "stats") ] in
  with_ic (B.frame env) (fun ic ->
      match Frame.read_event ic ~framing:Frame.Binary ~max_bytes:4096 with
      | Frame.Request (Ok req) ->
          Alcotest.(check string) "method" "stats" (P.method_name req.P.call)
      | e ->
          Alcotest.failf "expected Ok request, got code %s"
            (match event_code e with
            | Some c -> P.error_code_string c
            | None -> "none"))

(* ------------------------------------------------------------------ *)
(* Writer: coalescing, failure containment *)

let read_all fd =
  let buf = Buffer.create 256 in
  let b = Bytes.create 4096 in
  let rec go () =
    match Unix.read fd b 0 4096 with
    | 0 -> ()
    | n ->
        Buffer.add_subbytes buf b 0 n;
        go ()
  in
  go ();
  Buffer.contents buf

let test_writer_json_newlines () =
  let r, w = Unix.pipe () in
  let wr = Frame.writer w ~framing:Frame.Json_lines in
  Frame.send wr "{\"a\":1}";
  Frame.send wr "{\"b\":2}";
  Frame.close_writer wr;
  Unix.close w;
  let out = read_all r in
  Unix.close r;
  Alcotest.(check string) "framed lines" "{\"a\":1}\n{\"b\":2}\n" out

let test_writer_binary_raw () =
  let r, w = Unix.pipe () in
  let wr = Frame.writer w ~framing:Frame.Binary in
  let f1 = B.frame (Json.Int 1) and f2 = B.frame (Json.Str "x") in
  Frame.send wr f1;
  Frame.send wr f2;
  Frame.close_writer wr;
  Unix.close w;
  let out = read_all r in
  Unix.close r;
  Alcotest.(check string) "raw frames" (f1 ^ f2) out

let test_writer_peer_gone () =
  let prev = Sys.signal Sys.sigpipe Sys.Signal_ignore in
  Fun.protect
    ~finally:(fun () -> Sys.set_signal Sys.sigpipe prev)
    (fun () ->
      let r, w = Unix.pipe () in
      let wr = Frame.writer w ~framing:Frame.Json_lines in
      Unix.close r;
      Frame.send wr "lost";
      (* The flush happens on the writer thread; poll for the failure. *)
      let rec wait n =
        if Frame.writer_failed wr then ()
        else if n = 0 then Alcotest.fail "writer never observed EPIPE"
        else begin
          Thread.delay 0.01;
          wait (n - 1)
        end
      in
      wait 200;
      (match Frame.send wr "after failure" with
      | () -> Alcotest.fail "send after failure should raise"
      | exception Failure _ -> ());
      Frame.close_writer wr;
      Unix.close w)

(* ------------------------------------------------------------------ *)
(* Quota: deterministic token buckets *)

let test_quota_burst_then_refill () =
  let q = Quota.create ~rate:10.0 ~burst:2.0 in
  let t0 = 0L in
  check_bool "1st" true (Quota.admit ~now_ns:t0 q ~tenant:"a");
  check_bool "2nd" true (Quota.admit ~now_ns:t0 q ~tenant:"a");
  check_bool "3rd clipped" false (Quota.admit ~now_ns:t0 q ~tenant:"a");
  (* 100 ms at 10 rps refills exactly one token. *)
  let t1 = 100_000_000L in
  check_bool "refilled" true (Quota.admit ~now_ns:t1 q ~tenant:"a");
  check_bool "empty again" false (Quota.admit ~now_ns:t1 q ~tenant:"a");
  let s = Quota.stats q in
  check_int "admitted" 3 s.Quota.admitted;
  check_int "rejected" 2 s.Quota.rejected;
  check_int "tenants" 1 s.Quota.tenants

let test_quota_tenants_independent () =
  let q = Quota.create ~rate:1.0 ~burst:1.0 in
  check_bool "a" true (Quota.admit ~now_ns:0L q ~tenant:"a");
  check_bool "a clipped" false (Quota.admit ~now_ns:0L q ~tenant:"a");
  check_bool "b unaffected" true (Quota.admit ~now_ns:0L q ~tenant:"b");
  check_bool "anonymous separate" true (Quota.admit ~now_ns:0L q ~tenant:"");
  check_int "tenants" 3 (Quota.stats q).Quota.tenants

let test_quota_burst_cap () =
  let q = Quota.create ~rate:1000.0 ~burst:3.0 in
  (* A long idle stretch must not bank more than [burst] tokens. *)
  let later = 60_000_000_000L in
  check_bool "1" true (Quota.admit ~now_ns:later q ~tenant:"a");
  check_bool "2" true (Quota.admit ~now_ns:later q ~tenant:"a");
  check_bool "3" true (Quota.admit ~now_ns:later q ~tenant:"a");
  check_bool "capped" false (Quota.admit ~now_ns:later q ~tenant:"a")

let test_quota_invalid_args () =
  (match Quota.create ~rate:0.0 ~burst:1.0 with
  | _ -> Alcotest.fail "rate 0 should be rejected"
  | exception Invalid_argument _ -> ());
  match Quota.create ~rate:1.0 ~burst:0.5 with
  | _ -> Alcotest.fail "burst < 1 should be rejected"
  | exception Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Batching: staging queue → submit_batch *)

let ping_req i =
  { P.id = Json.Int i; timeout_ms = None; tenant = None; call = P.Ping }

let collect_replies () =
  let m = Mutex.create () in
  let replies = ref [] in
  let reply line =
    Mutex.lock m;
    replies := line :: !replies;
    Mutex.unlock m
  in
  let count () =
    Mutex.lock m;
    let n = List.length !replies in
    Mutex.unlock m;
    n
  in
  let all () =
    Mutex.lock m;
    let r = !replies in
    Mutex.unlock m;
    r
  in
  (reply, count, all)

let wait_for ?(timeout_s = 10.0) f =
  let rec go n = if f () then true else if n = 0 then false else begin Thread.delay 0.01; go (n - 1) end in
  go (int_of_float (timeout_s /. 0.01))

let test_batch_dispatch () =
  let engine =
    Engine.create
      { Engine.default_config with domains = 1; queue_capacity = 64 }
  in
  let batch = Batch.create engine in
  let reply, count, all = collect_replies () in
  for i = 1 to 50 do
    Batch.push batch (ping_req i) ~reply
  done;
  check_bool "all 50 answered" true (wait_for (fun () -> count () = 50));
  List.iter
    (fun line ->
      match Json.parse line with
      | Ok resp ->
          check_bool "ok" true
            (match Json.member "ok" resp with
            | Some (Json.Bool true) -> true
            | _ -> false)
      | Error _ -> Alcotest.fail "unparseable reply")
    (all ());
  let s = Batch.stats batch in
  check_int "requests through batches" 50 s.Batch.requests;
  check_bool "at least one batch" true (s.Batch.batches >= 1);
  check_bool "batches <= requests" true (s.Batch.batches <= 50);
  Batch.stop batch;
  Engine.shutdown engine

let test_submit_batch_mixed_outcomes () =
  (* One worker wedged on a gate, queue of one: a 2-request batch must
     come back [Accepted; Rejected_overloaded] from one call. *)
  let gate = Atomic.make false in
  let handler ~stats:_ ~cancel:_ (req : P.request) =
    match req.P.call with
    | P.Ping ->
        while not (Atomic.get gate) do
          Thread.delay 0.002
        done;
        Ok (Json.Obj [ ("pong", Json.Bool true) ])
    | _ -> Ok Json.Null
  in
  let engine =
    Engine.create ~handler
      { Engine.default_config with domains = 1; queue_capacity = 1 }
  in
  let reply, count, all = collect_replies () in
  (match Engine.submit engine (ping_req 1) ~reply with
  | Engine.Accepted -> ()
  | _ -> Alcotest.fail "first submit should be accepted");
  check_bool "worker picked up" true
    (wait_for (fun () -> Engine.inflight engine = 1));
  (match Engine.submit_batch engine [ (ping_req 2, reply); (ping_req 3, reply) ] with
  | [ Engine.Accepted; Engine.Rejected_overloaded ] -> ()
  | outcomes ->
      Alcotest.failf "unexpected outcomes (%d entries)" (List.length outcomes));
  (* The shed reply is synchronous: already delivered. *)
  check_bool "overloaded reply delivered" true (count () >= 1);
  Atomic.set gate true;
  check_bool "all three answered" true (wait_for (fun () -> count () = 3));
  let overloaded =
    List.filter (fun l -> contains l "overloaded") (all ())
  in
  check_int "exactly one shed" 1 (List.length overloaded);
  Engine.shutdown engine

let test_batch_backpressure () =
  (* Same wedged worker and queue of one, but through [Batch]: the
     dispatcher sizes its submits to [Engine.wait_capacity] and [push]
     blocks at the staging watermark, so a flood that overflows the
     direct-submit path ([Rejected_overloaded] above) must instead
     block the pusher and answer every request once the worker moves. *)
  let gate = Atomic.make false in
  let handler ~stats:_ ~cancel:_ (req : P.request) =
    match req.P.call with
    | P.Ping ->
        while not (Atomic.get gate) do
          Thread.delay 0.002
        done;
        Ok (Json.Obj [ ("pong", Json.Bool true) ])
    | _ -> Ok Json.Null
  in
  let engine =
    Engine.create ~handler
      { Engine.default_config with domains = 1; queue_capacity = 1 }
  in
  let batch = Batch.create ~max_staged:2 engine in
  let reply, count, all = collect_replies () in
  let pushed = Atomic.make 0 in
  let pusher =
    Thread.create
      (fun () ->
        for i = 1 to 10 do
          Batch.push batch (ping_req i) ~reply;
          Atomic.incr pushed
        done)
      ()
  in
  (* Worker wedged + queue 1 + watermark 2: absorption tops out at one
     inflight, one queued, one swept batch (<= 2) held by the waiting
     dispatcher, and two staged — the pusher must stall short of 10;
     the flood is absorbed as blocking, not shed. *)
  check_bool "pusher starts" true (wait_for (fun () -> Atomic.get pushed >= 2));
  Thread.delay 0.15;
  check_bool "pusher blocked at watermark" true (Atomic.get pushed < 10);
  check_int "nothing answered while wedged" 0 (count ());
  Atomic.set gate true;
  Thread.join pusher;
  check_bool "all ten answered" true (wait_for (fun () -> count () = 10));
  List.iter
    (fun l -> check_bool "no overloaded replies" false (contains l "overloaded"))
    (all ());
  Batch.stop batch;
  Engine.shutdown engine;
  (* Closed engine: capacity waits must not block shutdown paths. *)
  check_bool "wait_capacity after shutdown" true
    (Engine.wait_capacity engine = max_int)

(* ------------------------------------------------------------------ *)
(* Metrics rendering (pure) *)

let test_metrics_render () =
  let engine = Engine.create { Engine.default_config with domains = 1 } in
  let stats = Engine.stats_json engine in
  let children =
    [ { Supervisor.c_index = 0; c_pid = 111; c_restarts = 0; c_up = true };
      { Supervisor.c_index = 1; c_pid = 222; c_restarts = 3; c_up = false } ]
  in
  let shard_stats = [ (0, Ok stats); (1, Error "connect refused") ] in
  let router =
    Some { Router.accepted = 9; active = 2; failovers = 1; unrouted = 0 }
  in
  let text = Metrics.render ~children ~shard_stats ~router in
  Engine.shutdown engine;
  check_contains "shard count" text "pslocal_shards 2";
  check_contains "up" text "pslocal_shard_up{shard=\"0\"} 1";
  check_contains "down" text "pslocal_shard_up{shard=\"1\"} 0";
  check_contains "restarts" text "pslocal_shard_restarts_total{shard=\"1\"} 3";
  check_contains "pid" text "pslocal_shard_pid{shard=\"0\"} 111";
  check_contains "scrape ok" text "pslocal_shard_scrape_ok{shard=\"0\"} 1";
  check_contains "scrape failed" text "pslocal_shard_scrape_ok{shard=\"1\"} 0";
  check_contains "per-shard counter" text "pslocal_completed_total{shard=\"0\"} 0";
  check_contains "cluster sum" text "pslocal_cluster_completed_total 0";
  check_contains "latency quantile" text
    "pslocal_latency_ms{shard=\"0\",quantile=\"p99\"}";
  check_contains "router accepted" text "pslocal_router_connections_total 9";
  check_contains "router failovers" text "pslocal_router_failovers_total 1";
  check_contains "help lines" text "# HELP pslocal_shard_up";
  check_contains "type lines" text "# TYPE pslocal_shard_restarts_total counter"

let test_http_response_shape () =
  let r = Metrics.http_response ~status:"200 OK" ~body:"hello\n" in
  check_contains "status line" r "HTTP/1.1 200 OK\r\n";
  check_contains "content length" r "Content-Length: 6\r\n";
  check_contains "separator + body" r "\r\n\r\nhello\n"

(* ------------------------------------------------------------------ *)
(* Stale-socket recovery (the startup fix, pinned) *)

let tmp_path name =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "pslocal-test-%d-%s" (Unix.getpid ()) name)

let test_stale_socket_replaced () =
  let path = tmp_path "stale.sock" in
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd 1;
  (* Owner dies without unlinking: the classic crash leftover. *)
  Unix.close fd;
  check_bool "file left behind" true (Sys.file_exists path);
  (match Server.prepare_socket_path path with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "stale socket should be cleaned: %s" msg);
  check_bool "stale file unlinked" false (Sys.file_exists path)

let test_live_socket_refused () =
  let path = tmp_path "live.sock" in
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd 1;
  Fun.protect
    ~finally:(fun () ->
      Unix.close fd;
      try Unix.unlink path with Unix.Unix_error _ -> ())
    (fun () ->
      match Server.prepare_socket_path path with
      | Ok () -> Alcotest.fail "live socket must not be hijacked"
      | Error msg ->
          check_contains "says live" msg "live";
          check_bool "file untouched" true (Sys.file_exists path))

let test_non_socket_refused () =
  let path = tmp_path "notasocket" in
  let oc = open_out path in
  output_string oc "data";
  close_out oc;
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      match Server.prepare_socket_path path with
      | Ok () -> Alcotest.fail "regular file must not be unlinked"
      | Error msg -> check_contains "says not a socket" msg "not a socket")

(* ------------------------------------------------------------------ *)
(* CLI contract: misconfiguration is a clean error, not an exception *)

let pslocal_exe () =
  Filename.concat (Filename.dirname Sys.executable_name) "../bin/pslocal.exe"

let run_cli args =
  let cmd = Filename.quote_command (pslocal_exe ()) args ^ " 2>&1" in
  let ic = Unix.open_process_in cmd in
  let buf = Buffer.create 256 in
  (try
     while true do
       Buffer.add_channel buf ic 1
     done
   with End_of_file -> ());
  let status = Unix.close_process_in ic in
  let code =
    match status with
    | Unix.WEXITED n -> n
    | Unix.WSIGNALED n | Unix.WSTOPPED n -> 128 + n
  in
  (code, Buffer.contents buf)

let expect_cli_error args needle =
  let code, out = run_cli args in
  if code = 0 then
    Alcotest.failf "pslocal %s: expected failure, got exit 0"
      (String.concat " " args);
  check_contains "error message" out needle;
  (* A clean diagnostic, not an escaped exception. *)
  if contains out "Raised at" || contains out "backtrace" then
    Alcotest.failf "raw exception leaked: %s" out

let test_cli_bad_flags () =
  expect_cli_error [ "serve"; "--shards"; "0" ] "--shards must be positive";
  expect_cli_error [ "serve"; "--shards=-3" ] "--shards must be positive";
  expect_cli_error [ "serve"; "--domains=0" ] "--domains must be positive";
  expect_cli_error [ "serve"; "--queue"; "0" ] "--queue must be positive";
  expect_cli_error [ "serve"; "--shards"; "2" ] "requires --socket";
  expect_cli_error [ "serve"; "--binary" ] "requires --socket";
  expect_cli_error [ "serve"; "--quota-rps"; "0"; "--socket"; "/tmp/x" ]
    "--quota-rps must be positive";
  expect_cli_error [ "serve"; "--quota-burst"; "4" ] "needs --quota-rps"

(* ------------------------------------------------------------------ *)
(* Live integration: real processes, real sockets *)

let spawn_serve args =
  Unix.create_process (pslocal_exe ())
    (Array.of_list (pslocal_exe () :: "serve" :: args))
    Unix.stdin Unix.stdout Unix.stderr

let kill_quietly pid signal =
  try Unix.kill pid signal with Unix.Unix_error _ -> ()

let reap pid =
  match Unix.waitpid [] pid with
  | _, status -> Some status
  | exception Unix.Unix_error (Unix.ECHILD, _, _) -> None

let with_server args ~sockets f =
  List.iter
    (fun p -> try Unix.unlink p with Unix.Unix_error _ -> ())
    sockets;
  let pid = spawn_serve args in
  Fun.protect
    ~finally:(fun () ->
      kill_quietly pid Sys.sigkill;
      ignore (reap pid : Unix.process_status option);
      List.iter
        (fun p -> try Unix.unlink p with Unix.Unix_error _ -> ())
        sockets)
    (fun () -> f pid)

let wait_sockets paths =
  check_bool
    (Printf.sprintf "server came up (%s)" (String.concat ", " paths))
    true
    (wait_for ~timeout_s:15.0 (fun () ->
         List.for_all Supervisor.socket_ready paths))

let connect_unix path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  fd

let http_get_metrics path =
  let fd = connect_unix path in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      let req = "GET /metrics HTTP/1.1\r\nHost: pslocal\r\n\r\n" in
      let _ = Unix.write fd (Bytes.of_string req) 0 (String.length req) in
      let raw = read_all fd in
      (* body follows the first blank line *)
      let rec find_body i =
        if i + 4 > String.length raw then raw
        else if String.equal (String.sub raw i 4) "\r\n\r\n" then
          String.sub raw (i + 4) (String.length raw - i - 4)
        else find_body (i + 1)
      in
      find_body 0)

let metric_value body name =
  (* First line "name value" or "name{labels} value". *)
  String.split_on_char '\n' body
  |> List.find_map (fun line ->
         if
           String.length line > String.length name
           && String.equal (String.sub line 0 (String.length name)) name
           && (let c = line.[String.length name] in
               c = ' ' || c = '{')
         then
           match String.rindex_opt line ' ' with
           | Some i ->
               float_of_string_opt
                 (String.sub line (i + 1) (String.length line - i - 1))
           | None -> None
         else None)

let metric_series body name = metric_value body name

let test_tier_json_roundtrip_and_drain () =
  let front = tmp_path "tier.sock" in
  let shard_socks = [ front ^ ".shard.0"; front ^ ".shard.1" ] in
  with_server
    [ "--socket"; front; "--shards"; "2"; "--domains"; "1";
      "--quota-rps"; "100000" ]
    ~sockets:(front :: shard_socks)
    (fun pid ->
      wait_sockets [ front ];
      let fd = connect_unix front in
      let oc = Unix.out_channel_of_descr fd in
      let ic = Unix.in_channel_of_descr fd in
      for i = 1 to 30 do
        output_string oc (Printf.sprintf "{\"id\":%d,\"method\":\"ping\"}\n" i)
      done;
      flush oc;
      let got = ref 0 in
      (try
         while !got < 30 do
           let line = input_line ic in
           (match Json.parse line with
           | Ok resp ->
               check_bool "reply ok" true
                 (match Json.member "ok" resp with
                 | Some (Json.Bool true) -> true
                 | _ -> false)
           | Error e -> Alcotest.failf "bad reply line: %s" e);
           incr got
         done
       with End_of_file -> ());
      check_int "all pings answered before SIGTERM" 30 !got;
      (* Graceful drain: replies done, now stop the tier. *)
      kill_quietly pid Sys.sigterm;
      (* Our connection sees clean EOF, never a partial line. *)
      (match input_line ic with
      | line -> Alcotest.failf "unexpected post-drain line: %s" line
      | exception End_of_file -> ());
      (match reap pid with
      | Some (Unix.WEXITED 0) -> ()
      | Some status ->
          Alcotest.failf "tier exit not clean: %s"
            (match status with
            | Unix.WEXITED n -> Printf.sprintf "exit %d" n
            | Unix.WSIGNALED n -> Printf.sprintf "signal %d" n
            | Unix.WSTOPPED n -> Printf.sprintf "stopped %d" n)
      | None -> ());
      check_bool "front socket removed" false (Sys.file_exists front);
      List.iter
        (fun p -> check_bool "shard socket removed" false (Sys.file_exists p))
        shard_socks;
      Unix.close fd)

(* Regression: a client that pings once and then just sits on the open
   connection must not stall the drain.  The router's backward pump ends
   at shard EOF, but the forward pump is parked in [read client]; without
   the SHUTDOWN_RECEIVE half-close in [Router.handle] the join only
   resolves via the 30 s [await_drained] timeout.  With the fix the tier
   exits in well under a second — we assert an order of magnitude of
   headroom so the timeout path can never masquerade as a pass. *)
let test_tier_drain_with_idle_client () =
  let front = tmp_path "tier-i.sock" in
  let shard_socks = [ front ^ ".shard.0"; front ^ ".shard.1" ] in
  with_server
    [ "--socket"; front; "--shards"; "2"; "--domains"; "1" ]
    ~sockets:(front :: shard_socks)
    (fun pid ->
      wait_sockets [ front ];
      let fd = connect_unix front in
      let oc = Unix.out_channel_of_descr fd in
      let ic = Unix.in_channel_of_descr fd in
      output_string oc "{\"id\":1,\"method\":\"ping\"}\n";
      flush oc;
      (match Json.parse (input_line ic) with
      | Ok resp ->
          check_bool "ping ok" true
            (match Json.member "ok" resp with
            | Some (Json.Bool true) -> true
            | _ -> false)
      | Error e -> Alcotest.failf "bad reply line: %s" e);
      (* Idle from here on: no close, no half-close, no more requests. *)
      kill_quietly pid Sys.sigterm;
      let t0 = Unix.gettimeofday () in
      (match reap pid with
      | Some (Unix.WEXITED 0) -> ()
      | Some status ->
          Alcotest.failf "tier exit not clean: %s"
            (match status with
            | Unix.WEXITED n -> Printf.sprintf "exit %d" n
            | Unix.WSIGNALED n -> Printf.sprintf "signal %d" n
            | Unix.WSTOPPED n -> Printf.sprintf "stopped %d" n)
      | None -> Alcotest.fail "tier process vanished before reap");
      let elapsed = Unix.gettimeofday () -. t0 in
      if elapsed > 10.0 then
        Alcotest.failf
          "drain with idle client took %.1fs (timeout path, not a drain)"
          elapsed;
      (* The connection still saw a clean EOF despite never closing. *)
      (match input_line ic with
      | line -> Alcotest.failf "unexpected post-drain line: %s" line
      | exception End_of_file -> ());
      check_bool "front socket removed" false (Sys.file_exists front);
      Unix.close fd)

let test_tier_shard_crash_restart () =
  let front = tmp_path "tier-r.sock" in
  let msock = tmp_path "tier-r-metrics.sock" in
  let shard_socks = [ front ^ ".shard.0"; front ^ ".shard.1" ] in
  with_server
    [ "--socket"; front; "--shards"; "2"; "--domains"; "1";
      "--metrics-socket"; msock ]
    ~sockets:(front :: msock :: shard_socks)
    (fun pid ->
      wait_sockets [ front; msock ];
      let body = http_get_metrics msock in
      check_contains "both up" body "pslocal_shard_up{shard=\"1\"} 1";
      let shard0_pid =
        match metric_series body "pslocal_shard_pid{shard=\"0\"}" with
        | Some v -> int_of_float v
        | None -> Alcotest.fail "no pid series for shard 0"
      in
      check_bool "restarts start at 0" true
        (match
           metric_series body "pslocal_shard_restarts_total{shard=\"0\"}"
         with
        | Some 0.0 -> true
        | _ -> false);
      (* Crash the shard; the supervisor must respawn it and the restart
         counter must become observable via /metrics. *)
      Unix.kill shard0_pid Sys.sigkill;
      check_bool "restart observed in metrics" true
        (wait_for ~timeout_s:15.0 (fun () ->
             let b = http_get_metrics msock in
             match
               ( metric_series b "pslocal_shard_restarts_total{shard=\"0\"}",
                 metric_series b "pslocal_shard_up{shard=\"0\"}" )
             with
             | Some r, Some 1.0 when r >= 1.0 -> true
             | _ -> false));
      (* The tier still serves (fresh connection; failover covers the
         restart window). *)
      let fd = connect_unix front in
      let oc = Unix.out_channel_of_descr fd in
      let ic = Unix.in_channel_of_descr fd in
      output_string oc "{\"id\":99,\"method\":\"ping\"}\n";
      flush oc;
      (match input_line ic with
      | line -> check_contains "post-restart pong" line "\"ok\":true"
      | exception End_of_file -> Alcotest.fail "no reply after restart");
      Unix.close fd;
      kill_quietly pid Sys.sigterm;
      match reap pid with
      | Some (Unix.WEXITED 0) | None -> ()
      | Some _ -> Alcotest.fail "tier exit not clean")

let test_binary_serve_live () =
  let sock = tmp_path "binary.sock" in
  with_server
    [ "--socket"; sock; "--binary"; "--domains"; "1" ]
    ~sockets:[ sock ]
    (fun pid ->
      wait_sockets [ sock ];
      let fd = connect_unix sock in
      let oc = Unix.out_channel_of_descr fd in
      let ic = Unix.in_channel_of_descr fd in
      let env = Json.Obj [ ("id", Json.Int 5); ("method", Json.Str "ping") ] in
      output_string oc (B.frame env);
      flush oc;
      (match Frame.read_message ic ~framing:Frame.Binary ~max_bytes:(1 lsl 20) with
      | Some (Ok resp) ->
          check_bool "binary pong" true
            (match (Json.member "id" resp, Json.member "ok" resp) with
            | Some (Json.Int 5), Some (Json.Bool true) -> true
            | _ -> false)
      | Some (Error e) -> Alcotest.failf "bad binary reply: %s" e
      | None -> Alcotest.fail "no binary reply");
      Unix.close fd;
      (* JSON at the binary port: one typed error frame, then hangup-safe. *)
      let fd2 = connect_unix sock in
      let oc2 = Unix.out_channel_of_descr fd2 in
      let ic2 = Unix.in_channel_of_descr fd2 in
      output_string oc2 "{\"id\":1,\"method\":\"ping\"}\n";
      flush oc2;
      (match Frame.read_message ic2 ~framing:Frame.Binary ~max_bytes:(1 lsl 20) with
      | Some (Ok resp) ->
          check_bool "typed parse_error reply" true
            (match Json.member "error" resp with
            | Some err -> (
                match Json.member "code" err with
                | Some (Json.Str "parse_error") -> true
                | _ -> false)
            | None -> false)
      | Some (Error e) -> Alcotest.failf "undecodable error reply: %s" e
      | None -> Alcotest.fail "no error reply for JSON-on-binary");
      Unix.close fd2;
      kill_quietly pid Sys.sigterm;
      match reap pid with
      | Some (Unix.WEXITED 0) | None -> ()
      | Some _ -> Alcotest.fail "binary server exit not clean")

let test_quota_serve_live () =
  let sock = tmp_path "quota.sock" in
  with_server
    [ "--socket"; sock; "--quota-rps"; "1"; "--quota-burst"; "1";
      "--domains"; "1" ]
    ~sockets:[ sock ]
    (fun pid ->
      wait_sockets [ sock ];
      let fd = connect_unix sock in
      let oc = Unix.out_channel_of_descr fd in
      let ic = Unix.in_channel_of_descr fd in
      for i = 1 to 3 do
        output_string oc
          (Printf.sprintf
             "{\"id\":%d,\"method\":\"ping\",\"params\":{\"tenant\":\"t1\"}}\n"
             i)
      done;
      flush oc;
      let ok = ref 0 and clipped = ref 0 in
      for _ = 1 to 3 do
        let line = input_line ic in
        if contains line "\"ok\":true" then incr ok
        else if contains line "overloaded" then incr clipped
      done;
      check_bool "some admitted" true (!ok >= 1);
      check_bool "some clipped" true (!clipped >= 1);
      check_int "every request answered" 3 (!ok + !clipped);
      Unix.close fd;
      kill_quietly pid Sys.sigterm;
      ignore (reap pid : Unix.process_status option))

(* ------------------------------------------------------------------ *)

let qsuite = List.map QCheck_alcotest.to_alcotest
  [ prop_binary_roundtrip; prop_frame_roundtrip; prop_cross_codec ]

let suites =
  [ ( "shard.codec",
      qsuite
      @ [ Alcotest.test_case "truncated frame header" `Quick
            test_truncated_header;
          Alcotest.test_case "mid-frame EOF" `Quick test_mid_frame_eof;
          Alcotest.test_case "oversized length prefix" `Quick
            test_oversized_prefix;
          Alcotest.test_case "JSON on a binary port" `Quick
            test_json_on_binary_port;
          Alcotest.test_case "binary on a JSON port" `Quick
            test_binary_on_json_port;
          Alcotest.test_case "clean EOF both codecs" `Quick test_clean_eof;
          Alcotest.test_case "of_bytes error catalogue" `Quick
            test_of_bytes_errors;
          Alcotest.test_case "decode_request happy path" `Quick
            test_decode_request_ok;
          Alcotest.test_case "read_event valid frame" `Quick
            test_read_event_valid_frame ] );
    ( "shard.writer",
      [ Alcotest.test_case "json framing appends newlines" `Quick
          test_writer_json_newlines;
        Alcotest.test_case "binary framing writes raw frames" `Quick
          test_writer_binary_raw;
        Alcotest.test_case "peer hangup contained" `Quick
          test_writer_peer_gone ] );
    ( "shard.quota",
      [ Alcotest.test_case "burst then refill" `Quick
          test_quota_burst_then_refill;
        Alcotest.test_case "tenants independent" `Quick
          test_quota_tenants_independent;
        Alcotest.test_case "idle never banks past burst" `Quick
          test_quota_burst_cap;
        Alcotest.test_case "invalid arguments rejected" `Quick
          test_quota_invalid_args ] );
    ( "shard.batch",
      [ Alcotest.test_case "50 pushes all answered" `Quick test_batch_dispatch;
        Alcotest.test_case "submit_batch mixed outcomes" `Quick
          test_submit_batch_mixed_outcomes;
        Alcotest.test_case "overflow backpressures, never sheds" `Quick
          test_batch_backpressure ] );
    ( "shard.metrics",
      [ Alcotest.test_case "prometheus rendering" `Quick test_metrics_render;
        Alcotest.test_case "http response shape" `Quick
          test_http_response_shape ] );
    ( "shard.socketpath",
      [ Alcotest.test_case "stale socket replaced" `Quick
          test_stale_socket_replaced;
        Alcotest.test_case "live socket refused" `Quick
          test_live_socket_refused;
        Alcotest.test_case "non-socket refused" `Quick
          test_non_socket_refused ] );
    ( "shard.cli",
      [ Alcotest.test_case "bad flags are clean errors" `Quick
          test_cli_bad_flags ] );
    ( "shard.live",
      [ Alcotest.test_case "tier: pings via router, drain on SIGTERM" `Quick
          test_tier_json_roundtrip_and_drain;
        Alcotest.test_case "tier: drain stays prompt with idle client" `Quick
          test_tier_drain_with_idle_client;
        Alcotest.test_case "tier: shard crash restarts, counter in metrics"
          `Quick test_tier_shard_crash_restart;
        Alcotest.test_case "binary server end-to-end" `Quick
          test_binary_serve_live;
        Alcotest.test_case "per-tenant quota clips live traffic" `Quick
          test_quota_serve_live ] ) ]
