(* Tests for the solve service: the JSON layer, protocol validation on
   hostile input, the engine's shed/timeout/drain behaviour with injected
   handlers, the transport line loop, and the two satellite hardenings
   (Parallel.fork_join exception propagation, Rng.streams).

   Engine tests use handlers that block on explicit latches rather than
   sleeps wherever possible, so they are scheduling-robust; every wait
   has a deadline so a regression fails loudly instead of hanging the
   suite. *)

module Json = Ps_server.Json
module P = Ps_server.Protocol
module Engine = Ps_server.Engine
module Server = Ps_server.Server

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Json *)

let parse_ok s =
  match Json.parse s with
  | Ok j -> j
  | Error e -> Alcotest.failf "parse %S: %s" s e

let parse_err s =
  match Json.parse s with
  | Ok _ -> Alcotest.failf "parse %S: expected an error" s
  | Error e -> e

let test_json_roundtrip () =
  let cases =
    [ "null"; "true"; "false"; "0"; "-42"; "3.5"; "\"\"";
      "\"a\\\"b\\\\c\\n\""; "[]"; "[1,2,3]"; "{}";
      "{\"a\":1,\"b\":[true,null],\"c\":{\"d\":\"e\"}}" ]
  in
  List.iter
    (fun s -> check_string s s (Json.to_string (parse_ok s)))
    cases

let test_json_unicode () =
  check_string "bmp escape" "\"\xc3\xa9\"" (Json.to_string (parse_ok "\"\\u00e9\""));
  check_string "surrogate pair" "\"\xf0\x9f\x99\x82\""
    (Json.to_string (parse_ok "\"\\ud83d\\ude42\""))

let test_json_errors () =
  List.iter
    (fun s -> ignore (parse_err s : string))
    [ ""; "{"; "[1,2"; "\"unterminated"; "01"; "1.2.3"; "nul";
      "{\"a\" 1}"; "[1,]"; "{,}"; "1 2"; "[1] x"; "\"\\ud83d\"" ]

let test_json_int_overflow_widens () =
  match parse_ok "99999999999999999999" with
  | Json.Float f -> check_bool "widened" true (f > 9e18)
  | j -> Alcotest.failf "expected Float, got %s" (Json.to_string j)

let test_json_max_depth () =
  let deep n = String.concat "" (List.init n (fun _ -> "[")) in
  (match Json.parse ~max_depth:8 (deep 64) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected depth error");
  ignore (parse_ok "[[[[1]]]]" : Json.t)

(* ------------------------------------------------------------------ *)
(* Protocol validation on hostile input *)

let code_of s =
  match P.parse_request s with
  | Ok _ -> Alcotest.failf "parse_request %S: expected an error" s
  | Error (_, e) -> P.error_code_string e.P.code

let test_protocol_truncated_line () =
  check_string "truncated json" "parse_error"
    (code_of "{\"id\":1,\"method\":\"redu");
  check_string "empty object" "invalid_request" (code_of "{}")

let test_protocol_oversized_payload () =
  let line =
    "{\"id\":7,\"method\":\"ping\",\"pad\":\"" ^ String.make 256 'x' ^ "\"}"
  in
  match P.parse_request ~max_bytes:64 line with
  | Error (_, e) ->
      check_string "code" "payload_too_large" (P.error_code_string e.P.code)
  | Ok _ -> Alcotest.fail "expected payload_too_large"

let test_protocol_unknown_method () =
  match P.parse_request "{\"id\":3,\"method\":\"frobnicate\"}" with
  | Error (id, e) ->
      check_string "code" "unknown_method" (P.error_code_string e.P.code);
      check_bool "id recovered" true (Json.equal id (Json.Int 3))
  | Ok _ -> Alcotest.fail "expected unknown_method"

let reduce_line payload =
  Json.to_string
    (Json.Obj
       [ ("id", Json.Int 1);
         ("method", Json.Str "reduce");
         ("params", Json.Obj [ ("hypergraph", Json.Str payload) ]) ])

let test_protocol_bad_hypergraph_ids () =
  (* Negative and int-overflowing vertex ids inside the inline Hio
     payload must surface as invalid_request, never as an exception. *)
  List.iter
    (fun payload ->
      check_string payload "invalid_request" (code_of (reduce_line payload)))
    [ "3 1\n2 0 -1";                      (* negative vertex *)
      "3 1\n2 0 99999999999999999999";    (* overflows int_of_string *)
      "-3 1\n";                           (* negative header *)
      "3 1\n2 0 5";                       (* vertex out of range *)
      "not a header" ]

let test_protocol_bad_params () =
  let mk fields =
    Json.to_string
      (Json.Obj
         [ ("id", Json.Int 1); ("method", Json.Str "reduce");
           ( "params",
             Json.Obj
               (("hypergraph", Json.Str "2 1\n2 0 1") :: fields) ) ])
  in
  check_string "k=0" "invalid_request"
    (code_of
       (Json.to_string
          (Json.Obj
             [ ("id", Json.Int 1); ("method", Json.Str "reduce");
               ( "params",
                 Json.Obj
                   [ ("hypergraph", Json.Str "2 1\n2 0 1");
                     ("k", Json.Int 0) ] ) ])));
  check_string "timeout_ms=0" "invalid_request"
    (code_of (mk [ ("timeout_ms", Json.Int 0) ]));
  check_string "unknown solver" "invalid_request"
    (code_of
       (Json.to_string
          (Json.Obj
             [ ("id", Json.Int 1); ("method", Json.Str "reduce");
               ( "params",
                 Json.Obj
                   [ ("hypergraph", Json.Str "2 1\n2 0 1");
                     ("solver", Json.Str "quantum") ] ) ])))

(* ------------------------------------------------------------------ *)
(* Engine: reply collection helpers *)

type replies = { m : Mutex.t; mutable lines : string list }

let new_replies () = { m = Mutex.create (); lines = [] }

let push r line =
  Mutex.lock r.m;
  r.lines <- line :: r.lines;
  Mutex.unlock r.m

let count r =
  Mutex.lock r.m;
  let n = List.length r.lines in
  Mutex.unlock r.m;
  n

let wait_for_replies ?(timeout_s = 10.0) r n =
  let deadline = Unix.gettimeofday () +. timeout_s in
  while count r < n && Unix.gettimeofday () < deadline do
    Thread.delay 0.005
  done;
  if count r < n then
    Alcotest.failf "timed out waiting for %d replies (got %d)" n (count r)

let error_code_of_line line =
  let j = parse_ok line in
  match Option.bind (Json.member "error" j) (Json.member "code") with
  | Some (Json.Str s) -> s
  | _ -> "ok"

let codes r =
  Mutex.lock r.m;
  let cs = List.map error_code_of_line r.lines in
  Mutex.unlock r.m;
  List.sort compare cs

let ping_req n = { P.id = Json.Int n; timeout_ms = None; tenant = None; call = P.Ping }

(* A latch the handler blocks on until the test releases it. *)
type gate = { gm : Mutex.t; gc : Condition.t; mutable open_ : bool }

let new_gate () = { gm = Mutex.create (); gc = Condition.create (); open_ = false }

let open_gate g =
  Mutex.lock g.gm;
  g.open_ <- true;
  Condition.broadcast g.gc;
  Mutex.unlock g.gm

let await_gate g =
  Mutex.lock g.gm;
  while not g.open_ do
    Condition.wait g.gc g.gm
  done;
  Mutex.unlock g.gm

let test_engine_overload_shed () =
  let gate = new_gate () in
  let handler ~stats:_ ~cancel:_ _req =
    await_gate gate;
    Ok (Json.Obj [ ("done", Json.Bool true) ])
  in
  let engine =
    Engine.create ~handler
      { Engine.domains = 1; queue_capacity = 1; default_timeout_ms = None; cache = None }
  in
  let r = new_replies () in
  (* First job occupies the single worker; wait until it is actually
     in flight so the queue-capacity accounting below is deterministic. *)
  check_bool "first accepted" true
    (Engine.submit engine (ping_req 1) ~reply:(push r) = Engine.Accepted);
  let deadline = Unix.gettimeofday () +. 10.0 in
  while Engine.inflight engine < 1 && Unix.gettimeofday () < deadline do
    Thread.delay 0.005
  done;
  check_int "in flight" 1 (Engine.inflight engine);
  (* Second fills the queue; third is shed with an immediate reply. *)
  check_bool "second accepted" true
    (Engine.submit engine (ping_req 2) ~reply:(push r) = Engine.Accepted);
  check_bool "third shed" true
    (Engine.submit engine (ping_req 3) ~reply:(push r)
    = Engine.Rejected_overloaded);
  check_int "shed replied synchronously" 1 (count r);
  check_string "shed code" "overloaded"
    (error_code_of_line (List.hd r.lines));
  open_gate gate;
  Engine.shutdown ~drain:true engine;
  wait_for_replies r 3;
  check_bool "accepted jobs succeeded" true
    (codes r = [ "ok"; "ok"; "overloaded" ])

let test_engine_timeout_cancels () =
  (* The handler cooperates with [cancel] exactly like the phase loop
     does; a 20 ms deadline must cut it off with a timeout response. *)
  let handler ~stats:_ ~cancel _req =
    while not (cancel ()) do
      Thread.delay 0.002
    done;
    raise Ps_core.Reduction.Canceled
  in
  let engine =
    Engine.create ~handler
      { Engine.domains = 1; queue_capacity = 4; default_timeout_ms = None; cache = None }
  in
  let r = new_replies () in
  let req = { P.id = Json.Int 1; timeout_ms = Some 20; tenant = None; call = P.Ping } in
  ignore (Engine.submit engine req ~reply:(push r) : Engine.submit_outcome);
  wait_for_replies r 1;
  check_string "timeout code" "timeout" (error_code_of_line (List.hd r.lines));
  Engine.shutdown ~drain:true engine

let test_engine_queue_expired_job_skips_handler () =
  (* A job whose deadline passes while it waits in the queue answers
     [timeout] without the handler ever running. *)
  let ran = Atomic.make 0 in
  let gate = new_gate () in
  let handler ~stats:_ ~cancel:_ req =
    (match req.P.id with
    | Json.Int 1 -> await_gate gate
    | _ -> Atomic.incr ran);
    Ok Json.Null
  in
  let engine =
    Engine.create ~handler
      { Engine.domains = 1; queue_capacity = 4; default_timeout_ms = None; cache = None }
  in
  let r = new_replies () in
  ignore (Engine.submit engine (ping_req 1) ~reply:(push r)
          : Engine.submit_outcome);
  let expiring =
    { P.id = Json.Int 2; timeout_ms = Some 10; tenant = None; call = P.Ping }
  in
  ignore (Engine.submit engine expiring ~reply:(push r)
          : Engine.submit_outcome);
  Thread.delay 0.05;  (* let the 10 ms budget elapse in the queue *)
  open_gate gate;
  Engine.shutdown ~drain:true engine;
  wait_for_replies r 2;
  check_bool "expired answered timeout" true
    (List.mem "timeout" (codes r));
  check_int "handler never ran for expired job" 0 (Atomic.get ran)

let test_engine_drain_answers_everything () =
  let handler ~stats:_ ~cancel:_ _req =
    Thread.delay 0.005;
    Ok Json.Null
  in
  let engine =
    Engine.create ~handler
      { Engine.domains = 2; queue_capacity = 64; default_timeout_ms = None; cache = None }
  in
  let r = new_replies () in
  let n = 20 in
  for i = 1 to n do
    check_bool "accepted" true
      (Engine.submit engine (ping_req i) ~reply:(push r) = Engine.Accepted)
  done;
  (* Shutdown before most jobs have run: drain must still answer all. *)
  Engine.shutdown ~drain:true engine;
  check_int "every accepted job answered" n (count r);
  check_bool "all ok" true (List.for_all (( = ) "ok") (codes r));
  (* Submissions after close are rejected with a typed error. *)
  check_bool "post-close rejected" true
    (Engine.submit engine (ping_req 99) ~reply:(push r)
    = Engine.Rejected_shutting_down);
  check_string "post-close code" "shutting_down"
    (error_code_of_line (List.hd r.lines))

let test_engine_abort_cancels_in_flight () =
  let entered = new_gate () in
  let handler ~stats:_ ~cancel _req =
    open_gate entered;
    while not (cancel ()) do
      Thread.delay 0.002
    done;
    raise Ps_core.Reduction.Canceled
  in
  let engine =
    Engine.create ~handler
      { Engine.domains = 1; queue_capacity = 4; default_timeout_ms = None; cache = None }
  in
  let r = new_replies () in
  ignore (Engine.submit engine (ping_req 1) ~reply:(push r)
          : Engine.submit_outcome);
  await_gate entered;
  Engine.shutdown ~drain:false engine;
  wait_for_replies r 1;
  check_string "abort code" "shutting_down"
    (error_code_of_line (List.hd r.lines))

let test_engine_handler_exception_is_internal () =
  let handler ~stats:_ ~cancel:_ req =
    match req.P.id with
    | Json.Int 1 -> failwith "boom"
    | _ -> Ok Json.Null
  in
  let engine =
    Engine.create ~handler
      { Engine.domains = 1; queue_capacity = 4; default_timeout_ms = None; cache = None }
  in
  let r = new_replies () in
  ignore (Engine.submit engine (ping_req 1) ~reply:(push r)
          : Engine.submit_outcome);
  wait_for_replies r 1;
  check_string "internal code" "internal"
    (error_code_of_line (List.hd r.lines));
  (* The worker survived the exception and keeps serving. *)
  ignore (Engine.submit engine (ping_req 2) ~reply:(push r)
          : Engine.submit_outcome);
  wait_for_replies r 2;
  check_bool "next job ok" true (List.mem "ok" (codes r));
  Engine.shutdown ~drain:true engine

(* ------------------------------------------------------------------ *)
(* Transport line loop over the real service handler *)

let with_real_engine f =
  let engine =
    Engine.create
      { Engine.domains = 2; queue_capacity = 16; default_timeout_ms = None; cache = None }
  in
  Fun.protect ~finally:(fun () -> Engine.shutdown ~drain:true engine)
    (fun () -> f engine)

let feed engine r line =
  Server.handle_line ~engine ~max_line_bytes:P.default_max_bytes
    ~reply:(push r) line

let test_server_survives_malformed_batch () =
  with_real_engine @@ fun engine ->
  let r = new_replies () in
  List.iter (feed engine r)
    [ "{\"id\":1,\"method\":\"ping\"}";
      "garbage";
      "{\"id\":\"x\",\"method\":\"nope\"}";
      "{\"id\":2,\"method\":\"reduce\",\"params\":{\"hypergraph\":\"1 1\\n2 0 -5\"}}";
      "";  (* blank lines are ignored, not answered *)
      "{\"id\":3,\"method\":\"ping\"}" ]  ;
  wait_for_replies r 5;
  check_int "blank line ignored" 5 (count r);
  check_bool "typed errors and live pings" true
    (codes r = [ "invalid_request"; "ok"; "ok"; "parse_error";
                 "unknown_method" ])

let test_server_stats_roundtrip () =
  with_real_engine @@ fun engine ->
  let r = new_replies () in
  feed engine r "{\"id\":1,\"method\":\"ping\"}";
  wait_for_replies r 1;
  let s = new_replies () in
  feed engine s "{\"id\":2,\"method\":\"stats\"}";
  wait_for_replies s 1;
  let j = parse_ok (List.hd s.lines) in
  let result = Option.get (Json.member "result" j) in
  let get name =
    match Option.bind (Json.member name result) Json.to_int_opt with
    | Some v -> v
    | None -> Alcotest.failf "stats missing %s" name
  in
  check_bool "accepted >= 2" true (get "accepted" >= 2);
  check_bool "completed >= 1" true (get "completed" >= 1);
  check_bool "latency window present" true
    (Json.member "latency_ms" result <> None)

let test_server_reduce_roundtrip_certified () =
  with_real_engine @@ fun engine ->
  let h = Ps_hypergraph.Hgen.sunflower ~n_petals:12 ~core:3 ~petal:3 in
  let r = new_replies () in
  feed engine r
    (Json.to_string
       (Json.Obj
          [ ("id", Json.Int 1);
            ("method", Json.Str "reduce");
            ( "params",
              Json.Obj
                [ ("hypergraph", Json.Str (Ps_hypergraph.Hio.to_text h)) ] )
          ]));
  wait_for_replies r 1;
  let j = parse_ok (List.hd r.lines) in
  check_string "ok" "ok" (error_code_of_line (List.hd r.lines));
  let result = Option.get (Json.member "result" j) in
  check_bool "certified" true
    (Option.bind (Json.member "certified" result) Json.to_bool_opt
    = Some true)

(* ------------------------------------------------------------------ *)
(* Satellite: fork_join propagates a worker's exception *)

exception Chunk_failed of int

let test_fork_join_propagates_exception () =
  let reached = Atomic.make 0 in
  (match
     Ps_util.Parallel.fork_join ~domains:4 (fun i ->
         Atomic.incr reached;
         if i = 2 then raise (Chunk_failed i))
   with
  | () -> Alcotest.fail "expected Chunk_failed"
  | exception Chunk_failed 2 -> ()
  | exception e ->
      Alcotest.failf "wrong exception: %s" (Printexc.to_string e));
  check_int "every chunk ran" 4 (Atomic.get reached);
  (* No deadlock, no poisoned state: the next fork_join still works. *)
  let sum = Atomic.make 0 in
  Ps_util.Parallel.fork_join ~domains:4 (fun i ->
      ignore (Atomic.fetch_and_add sum i : int));
  check_int "subsequent fork_join fine" 6 (Atomic.get sum)

let test_fork_join_first_failure_wins () =
  (* When several workers raise, the exception of the lowest-indexed
     chunk is the one reported (a deterministic choice). *)
  match
    Ps_util.Parallel.fork_join ~domains:4 (fun i ->
        if i >= 1 then raise (Chunk_failed i))
  with
  | () -> Alcotest.fail "expected Chunk_failed"
  | exception Chunk_failed 1 -> ()
  | exception e ->
      Alcotest.failf "wrong exception: %s" (Printexc.to_string e)

let test_fork_join_staged_stage_ordering () =
  let stage1_done = Atomic.make 0 in
  let mid_runs = Atomic.make 0 in
  let mid_saw = Atomic.make 0 in
  let stage2_after_mid = Atomic.make true in
  Ps_util.Parallel.fork_join_staged ~domains:4
    ~stage1:(fun _ -> Atomic.incr stage1_done)
    ~mid:(fun () ->
      Atomic.incr mid_runs;
      Atomic.set mid_saw (Atomic.get stage1_done))
    ~stage2:(fun _ ->
      if Atomic.get mid_runs <> 1 then Atomic.set stage2_after_mid false);
  check_int "stage1 ran on every domain" 4 (Atomic.get stage1_done);
  check_int "mid ran exactly once" 1 (Atomic.get mid_runs);
  check_int "mid saw all of stage1" 4 (Atomic.get mid_saw);
  check_bool "stage2 saw mid" true (Atomic.get stage2_after_mid)

let test_fork_join_staged_matches_two_fork_joins () =
  (* The count/prefix-sum/fill shape of the CSR builder, staged vs. two
     separate fork_joins — identical output. *)
  let n = 57 and domains = 3 in
  let run_staged () =
    let a = Array.make n 0 and b = Array.make n 0 in
    let total = ref 0 in
    Ps_util.Parallel.fork_join_staged ~domains
      ~stage1:(fun d ->
        let lo, hi = Ps_util.Parallel.range ~pieces:domains ~lo:0 ~hi:n d in
        for i = lo to hi - 1 do
          a.(i) <- i * i
        done)
      ~mid:(fun () -> total := Array.fold_left ( + ) 0 a)
      ~stage2:(fun d ->
        let lo, hi = Ps_util.Parallel.range ~pieces:domains ~lo:0 ~hi:n d in
        for i = lo to hi - 1 do
          b.(i) <- a.(i) + !total
        done);
    b
  in
  let run_split () =
    let a = Array.make n 0 and b = Array.make n 0 in
    Ps_util.Parallel.fork_join ~domains (fun d ->
        let lo, hi = Ps_util.Parallel.range ~pieces:domains ~lo:0 ~hi:n d in
        for i = lo to hi - 1 do
          a.(i) <- i * i
        done);
    let total = Array.fold_left ( + ) 0 a in
    Ps_util.Parallel.fork_join ~domains (fun d ->
        let lo, hi = Ps_util.Parallel.range ~pieces:domains ~lo:0 ~hi:n d in
        for i = lo to hi - 1 do
          b.(i) <- a.(i) + total
        done);
    b
  in
  check_bool "staged = two fork_joins" true (run_staged () = run_split ());
  (* Degenerate single-domain path takes the no-spawn shortcut. *)
  let c = Array.make 4 0 in
  Ps_util.Parallel.fork_join_staged ~domains:1
    ~stage1:(fun d -> c.(0) <- d + 1)
    ~mid:(fun () -> c.(1) <- c.(0) + 1)
    ~stage2:(fun d -> c.(2) <- c.(1) + d + 1);
  check_bool "domains=1 sequential" true (c.(0) = 1 && c.(1) = 2 && c.(2) = 3)

let test_fork_join_staged_abort_on_failure () =
  (* A stage1 failure must propagate without deadlocking the barriers,
     and must abort mid and stage2 everywhere. *)
  let mid_runs = Atomic.make 0 and stage2_runs = Atomic.make 0 in
  (match
     Ps_util.Parallel.fork_join_staged ~domains:4
       ~stage1:(fun i -> if i = 3 then raise (Chunk_failed i))
       ~mid:(fun () -> Atomic.incr mid_runs)
       ~stage2:(fun _ -> Atomic.incr stage2_runs)
   with
  | () -> Alcotest.fail "expected Chunk_failed"
  | exception Chunk_failed 3 -> ()
  | exception e ->
      Alcotest.failf "wrong exception: %s" (Printexc.to_string e));
  check_int "mid aborted" 0 (Atomic.get mid_runs);
  check_int "stage2 aborted" 0 (Atomic.get stage2_runs);
  (* Barriers are per-call state: a subsequent staged call still works. *)
  let ok = Atomic.make 0 in
  Ps_util.Parallel.fork_join_staged ~domains:4
    ~stage1:(fun _ -> Atomic.incr ok)
    ~mid:(fun () -> Atomic.incr ok)
    ~stage2:(fun _ -> Atomic.incr ok);
  check_int "subsequent staged call fine" 9 (Atomic.get ok)

(* ------------------------------------------------------------------ *)
(* Satellite: Rng.streams *)

let drain rng n = List.init n (fun _ -> Ps_util.Rng.bits64 rng)

let test_rng_streams_deterministic () =
  let a = Ps_util.Rng.streams (Ps_util.Rng.create 42) 4 in
  let b = Ps_util.Rng.streams (Ps_util.Rng.create 42) 4 in
  Array.iteri
    (fun i ra -> check_bool "same stream" true (drain ra 16 = drain b.(i) 16))
    a

let test_rng_streams_independent () =
  let parent = Ps_util.Rng.create 7 in
  let streams = Ps_util.Rng.streams parent 8 in
  let outputs = Array.map (fun r -> drain r 8) streams in
  Array.iteri
    (fun i oi ->
      Array.iteri
        (fun j oj ->
          if i < j then check_bool "streams differ" false (oi = oj))
        outputs)
    outputs;
  (* Derivation does not advance the parent... *)
  check_bool "parent undisturbed" true
    (drain parent 8 = drain (Ps_util.Rng.create 7) 8);
  (* ...and the parent's own stream differs from every child's. *)
  let fresh = Ps_util.Rng.create 7 in
  let parent_out = drain fresh 8 in
  Array.iter
    (fun o -> check_bool "parent differs from child" false (o = parent_out))
    outputs

let test_rng_streams_validation () =
  check_int "zero streams" 0
    (Array.length (Ps_util.Rng.streams (Ps_util.Rng.create 1) 0));
  match Ps_util.Rng.streams (Ps_util.Rng.create 1) (-1) with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Service.handle: one test per method, straight through the dispatcher
   (no engine, no transport) *)

let run_handle call =
  Ps_server.Service.handle
    ~stats:(fun () -> Json.Obj [ ("stub", Json.Bool true) ])
    ~cancel:(fun () -> false)
    { P.id = Json.Int 1; timeout_ms = None; tenant = None; call }

let handle_ok call =
  match run_handle call with
  | Ok j -> j
  | Error e -> Alcotest.failf "handle: unexpected error %s" e.P.message

let member name j =
  match Json.member name j with
  | Some v -> v
  | None -> Alcotest.failf "missing field %S in %s" name (Json.to_string j)

let test_service_ping_stats () =
  (match member "pong" (handle_ok P.Ping) with
  | Json.Bool true -> ()
  | j -> Alcotest.failf "pong: %s" (Json.to_string j));
  match member "stub" (handle_ok P.Stats) with
  | Json.Bool true -> ()
  | j -> Alcotest.failf "stats must return the injected snapshot: %s"
           (Json.to_string j)

let test_service_mis_all_algorithms () =
  let g = Ps_graph.Gen.ring 9 in
  let names algo =
    match member "algorithms" (handle_ok (P.Mis { graph = g; algo; seed = 5 }))
    with
    | Json.List entries ->
        List.map
          (fun e ->
            match (member "algorithm" e, member "size" e) with
            | Json.Str a, Json.Int s ->
                check_bool (a ^ " nonempty") true (s > 0);
                a
            | _ -> Alcotest.fail "malformed mis entry")
          entries
    | j -> Alcotest.failf "algorithms: %s" (Json.to_string j)
  in
  check_int "greedy alone" 1 (List.length (names P.Mis_greedy));
  Alcotest.(check (list string))
    "all four, table order"
    [ "greedy"; "luby"; "slocal"; "derandomized" ]
    (names P.Mis_all)

let test_service_decompose () =
  let g = Ps_graph.Gen.grid 5 5 in
  let r = handle_ok (P.Decompose { graph = g }) in
  (match member "verified" r with
  | Json.Bool true -> ()
  | j -> Alcotest.failf "decomposition must verify: %s" (Json.to_string j));
  match member "clusters" r with
  | Json.Int c -> check_bool "has clusters" true (c > 0)
  | j -> Alcotest.failf "clusters: %s" (Json.to_string j)

let solve_params_of h =
  { P.hypergraph = h; solver = Ps_maxis.Approx.greedy_min_degree;
    solver_name = "greedy"; presolve = `None; k = None; seed = 7;
    detail = false }

let test_service_reduce_and_certify () =
  let h = Ps_hypergraph.Hypergraph.of_edges 4 [ [ 0; 1 ]; [ 2; 3 ] ] in
  let r = handle_ok (P.Reduce (solve_params_of h)) in
  (match member "certified" r with
  | Json.Bool true -> ()
  | j -> Alcotest.failf "certified: %s" (Json.to_string j));
  let c = handle_ok (P.Certify (solve_params_of h)) in
  match member "all_ok" c with
  | Json.Bool true -> ()
  | j -> Alcotest.failf "certificate all_ok: %s" (Json.to_string j)

let check_hg = Ps_hypergraph.Hypergraph.of_edges 3 [ [ 0; 1 ]; [ 1; 2 ] ]

let valid_of r =
  match member "valid" r with
  | Json.Bool b -> b
  | j -> Alcotest.failf "valid: %s" (Json.to_string j)

let diagnostics_of r =
  match member "diagnostics" r with
  | Json.List ds -> ds
  | j -> Alcotest.failf "diagnostics: %s" (Json.to_string j)

let test_service_check_multicoloring () =
  let ok =
    handle_ok
      (P.Check
         (P.Check_multicoloring
            { hypergraph = check_hg; multicoloring = [| [ 0 ]; []; [ 0 ] |] }))
  in
  check_bool "valid coloring accepted" true (valid_of ok);
  check_int "no diagnostics" 0 (List.length (diagnostics_of ok));
  let bad =
    handle_ok
      (P.Check
         (P.Check_multicoloring
            { hypergraph = check_hg; multicoloring = [| [ 0 ]; [ 0 ]; [ 1 ] |] }))
  in
  check_bool "collision rejected" false (valid_of bad);
  match diagnostics_of bad with
  | d :: _ -> (
      (match member "rule" d with
      | Json.Str r -> check_string "rule" "conflict-free" r
      | j -> Alcotest.failf "rule: %s" (Json.to_string j));
      match member "kind" (member "where" d) with
      | Json.Str k -> check_string "positioned at an edge" "edge" k
      | j -> Alcotest.failf "kind: %s" (Json.to_string j))
  | [] -> Alcotest.fail "expected diagnostics"

let test_service_check_graph_sets () =
  let g = Ps_graph.Gen.path 3 in
  let r =
    handle_ok
      (P.Check
         (P.Check_graph_sets
            { graph = g; independent_set = Some [ 0; 2 ];
              dominating_set = Some [ 1 ] }))
  in
  check_bool "good certificates" true (valid_of r);
  (match member "checks" r with
  | Json.List cs -> check_int "csr + both sets" 3 (List.length cs)
  | j -> Alcotest.failf "checks: %s" (Json.to_string j));
  let bad =
    handle_ok
      (P.Check
         (P.Check_graph_sets
            { graph = g; independent_set = Some [ 0; 1 ];
              dominating_set = None }))
  in
  check_bool "internal edge rejected" false (valid_of bad)

let test_service_check_wire_parse () =
  (* the protocol layer builds the same targets from a request line *)
  let line =
    {|{"id":9,"method":"check","params":{"hypergraph":"3 2\n2 0 1\n2 1 2","multicoloring":[[0],[],[0]]}}|}
  in
  (match P.parse_request line with
  | Ok req ->
      check_bool "parsed check is valid" true (valid_of (handle_ok req.P.call))
  | Error (_, e) -> Alcotest.failf "parse: %s" e.P.message);
  (* neither hypergraph nor graph: invalid_request, not a crash *)
  match P.parse_request {|{"id":9,"method":"check","params":{}}|} with
  | Ok _ -> Alcotest.fail "expected invalid_request"
  | Error (_, e) ->
      check_string "code" "invalid_request" (P.error_code_string e.P.code)

(* ------------------------------------------------------------------ *)

(* ------------------------------------------------------------------ *)
(* Accept-loop resilience: the retry contract, pinned deterministically,
   plus a live signal-storm regression over a real Unix socket. *)

let unix_error e = Unix.Unix_error (e, "accept", "")

let test_accept_retrying_eintr () =
  (* N transient failures, then success: the wrapper must absorb all of
     them and hand back the connection. *)
  let attempts = ref 0 in
  let accept_fn () =
    incr attempts;
    if !attempts <= 5 then
      raise (unix_error (if !attempts mod 2 = 0 then Unix.ECONNABORTED
                         else Unix.EINTR))
    else "conn"
  in
  (match Server.accept_retrying ~should_stop:(fun () -> false) accept_fn with
  | Some c -> check_string "connection delivered" "conn" c
  | None -> Alcotest.fail "retry gave up on transient errors");
  check_int "retried through every failure" 6 !attempts

let test_accept_retrying_stop_between_retries () =
  (* A tripped stop latch is honored between retries, not ignored until
     the next successful accept. *)
  let stopped = ref false in
  let accept_fn () =
    stopped := true;
    raise (unix_error Unix.EINTR)
  in
  check_bool "stop wins over retry" true
    (Server.accept_retrying ~should_stop:(fun () -> !stopped) accept_fn
    = None)

let test_accept_retrying_ebadf_and_fatal () =
  check_bool "EBADF means the listener is gone" true
    (Server.accept_retrying ~should_stop:(fun () -> false) (fun () ->
         raise (unix_error Unix.EBADF))
    = None);
  (* Resource exhaustion (EMFILE and friends) is transient: the wrapper
     must back off and retry rather than kill the acceptor, and must
     still honor the stop latch between retries. *)
  let attempts = ref 0 in
  check_bool "EMFILE backs off, then honors stop" true
    (Server.accept_retrying
       ~should_stop:(fun () -> !attempts >= 3)
       (fun () ->
         incr attempts;
         raise (unix_error Unix.EMFILE))
    = None);
  check_int "EMFILE was retried until stopped" 3 !attempts;
  (* Anything else must propagate. *)
  match
    Server.accept_retrying ~should_stop:(fun () -> false) (fun () ->
        raise (unix_error Unix.EINVAL))
  with
  | exception Unix.Unix_error (Unix.EINVAL, _, _) -> ()
  | _ -> Alcotest.fail "EINVAL was swallowed"

let read_reply_retrying fd =
  (* Client-side reads race the storm too; retry EINTR by hand. *)
  let buf = Buffer.create 256 in
  let b = Bytes.create 1 in
  let rec go () =
    match Unix.read fd b 0 1 with
    | 0 -> Buffer.contents buf
    | _ ->
        if Char.equal (Bytes.get b 0) '\n' then Buffer.contents buf
        else (Buffer.add_char buf (Bytes.get b 0); go ())
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ()

let rec write_retrying fd s pos len =
  match Unix.write_substring fd s pos len with
  | n -> if n < len then write_retrying fd s (pos + n) (len - n)
  | exception Unix.Unix_error (Unix.EINTR, _, _) ->
      write_retrying fd s pos len

let rec connect_retrying fd addr =
  match Unix.connect fd addr with
  | () -> ()
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> connect_retrying fd addr

let test_accept_loop_survives_signal_storm () =
  (* Regression for the accept-loop bug: before [accept_retrying], one
     EINTR inside the ready branch killed the acceptor thread and the
     server stopped accepting while looking healthy.  Hammer the process
     with SIGUSR1 while clients keep connecting; every ping must still
     be answered. *)
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "pslocal_storm_%d.sock" (Unix.getpid ()))
  in
  (try Sys.remove path with Sys_error _ -> ());
  let prev_usr1 = Sys.signal Sys.sigusr1 (Sys.Signal_handle (fun _ -> ())) in
  let config =
    { Server.default_config with
      engine =
        { Engine.domains = 2; queue_capacity = 16; default_timeout_ms = None;
          cache = None } }
  in
  let server = Thread.create (fun () -> Server.serve_unix_socket ~config ~path ()) () in
  let deadline = Unix.gettimeofday () +. 10.0 in
  while not (Sys.file_exists path) && Unix.gettimeofday () < deadline do
    Thread.delay 0.01
  done;
  check_bool "server socket appeared" true (Sys.file_exists path);
  let self = Unix.getpid () in
  let storming = Atomic.make true in
  let stormer =
    Thread.create
      (fun () ->
        while Atomic.get storming do
          Unix.kill self Sys.sigusr1;
          Thread.delay 0.0003
        done)
      ()
  in
  let answered = ref 0 in
  Fun.protect
    ~finally:(fun () ->
      Atomic.set storming false;
      Thread.join stormer;
      Unix.kill self Sys.sigterm;
      Thread.join server;
      Sys.set_signal Sys.sigusr1 prev_usr1;
      try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      for i = 1 to 40 do
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Fun.protect
          ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
          (fun () ->
            connect_retrying fd (Unix.ADDR_UNIX path);
            let req =
              Printf.sprintf "{\"id\":%d,\"method\":\"ping\"}\n" i
            in
            write_retrying fd req 0 (String.length req);
            let line = read_reply_retrying fd in
            check_string
              (Printf.sprintf "ping %d answered ok" i)
              "ok" (error_code_of_line line);
            incr answered)
      done);
  check_int "every connection under the storm was served" 40 !answered

(* ------------------------------------------------------------------ *)
(* Stats discipline: failed and timeouts are disjoint counters *)

let stats_counters engine =
  let j = Engine.stats_json engine in
  let get name =
    match Option.bind (Json.member name j) Json.to_int_opt with
    | Some v -> v
    | None -> Alcotest.failf "stats_json missing %s" name
  in
  (get "accepted", get "completed", get "failed", get "timeouts")

let test_stats_failed_timeouts_disjoint () =
  (* One job that times out, one that fails: each lands in exactly one
     bucket, and completed covers both without double counting. *)
  let handler ~stats:_ ~cancel req =
    match req.P.id with
    | Json.Int 1 ->
        while not (cancel ()) do
          Thread.delay 0.002
        done;
        raise Ps_core.Reduction.Canceled
    | _ -> failwith "boom"
  in
  let engine =
    Engine.create ~handler
      { Engine.domains = 1; queue_capacity = 4; default_timeout_ms = None;
        cache = None }
  in
  let r = new_replies () in
  ignore
    (Engine.submit engine
       { P.id = Json.Int 1; timeout_ms = Some 20; tenant = None; call = P.Ping }
       ~reply:(push r)
      : Engine.submit_outcome);
  wait_for_replies r 1;
  let accepted, completed, failed, timeouts = stats_counters engine in
  check_int "accepted" 1 accepted;
  check_int "completed covers the timeout" 1 completed;
  check_int "timeout counted once" 1 timeouts;
  check_int "timeout is not a failure" 0 failed;
  ignore
    (Engine.submit engine (ping_req 2) ~reply:(push r)
      : Engine.submit_outcome);
  wait_for_replies r 2;
  let accepted, completed, failed, timeouts = stats_counters engine in
  check_int "accepted both" 2 accepted;
  check_int "completed both" 2 completed;
  check_int "failure counted once" 1 failed;
  check_int "failure is not a timeout" 1 timeouts;
  check_bool "buckets never overcount completed" true
    (failed + timeouts <= completed);
  Engine.shutdown ~drain:true engine;
  check_bool "ok + failed + timeouts = completed" true
    (let _, completed, failed, timeouts = stats_counters engine in
     codes r = [ "internal"; "timeout" ]
     && completed = 2 && failed = 1 && timeouts = 1)

let suites =
  [ ( "server.json",
      [ Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
        Alcotest.test_case "unicode" `Quick test_json_unicode;
        Alcotest.test_case "errors" `Quick test_json_errors;
        Alcotest.test_case "int overflow widens" `Quick
          test_json_int_overflow_widens;
        Alcotest.test_case "max depth" `Quick test_json_max_depth ] );
    ( "server.protocol",
      [ Alcotest.test_case "truncated line" `Quick
          test_protocol_truncated_line;
        Alcotest.test_case "oversized payload" `Quick
          test_protocol_oversized_payload;
        Alcotest.test_case "unknown method" `Quick
          test_protocol_unknown_method;
        Alcotest.test_case "bad hypergraph ids" `Quick
          test_protocol_bad_hypergraph_ids;
        Alcotest.test_case "bad params" `Quick test_protocol_bad_params ] );
    ( "server.engine",
      [ Alcotest.test_case "overload shed" `Quick test_engine_overload_shed;
        Alcotest.test_case "timeout cancels" `Quick
          test_engine_timeout_cancels;
        Alcotest.test_case "queue-expired skips handler" `Quick
          test_engine_queue_expired_job_skips_handler;
        Alcotest.test_case "drain answers everything" `Quick
          test_engine_drain_answers_everything;
        Alcotest.test_case "abort cancels in flight" `Quick
          test_engine_abort_cancels_in_flight;
        Alcotest.test_case "handler exception -> internal" `Quick
          test_engine_handler_exception_is_internal;
        Alcotest.test_case "failed/timeouts disjoint" `Quick
          test_stats_failed_timeouts_disjoint ] );
    ( "server.accept",
      [ Alcotest.test_case "retries transient errors" `Quick
          test_accept_retrying_eintr;
        Alcotest.test_case "stop between retries" `Quick
          test_accept_retrying_stop_between_retries;
        Alcotest.test_case "ebadf and fatal errors" `Quick
          test_accept_retrying_ebadf_and_fatal;
        Alcotest.test_case "survives signal storm" `Quick
          test_accept_loop_survives_signal_storm ] );
    ( "server.transport",
      [ Alcotest.test_case "survives malformed batch" `Quick
          test_server_survives_malformed_batch;
        Alcotest.test_case "stats roundtrip" `Quick
          test_server_stats_roundtrip;
        Alcotest.test_case "reduce roundtrip certified" `Quick
          test_server_reduce_roundtrip_certified ] );
    ( "server.parallel",
      [ Alcotest.test_case "fork_join propagates exception" `Quick
          test_fork_join_propagates_exception;
        Alcotest.test_case "fork_join first failure wins" `Quick
          test_fork_join_first_failure_wins;
        Alcotest.test_case "staged stage ordering" `Quick
          test_fork_join_staged_stage_ordering;
        Alcotest.test_case "staged = two fork_joins" `Quick
          test_fork_join_staged_matches_two_fork_joins;
        Alcotest.test_case "staged abort on failure" `Quick
          test_fork_join_staged_abort_on_failure ] );
    ( "server.service",
      [ Alcotest.test_case "ping and stats" `Quick test_service_ping_stats;
        Alcotest.test_case "mis all algorithms" `Quick
          test_service_mis_all_algorithms;
        Alcotest.test_case "decompose" `Quick test_service_decompose;
        Alcotest.test_case "reduce and certify" `Quick
          test_service_reduce_and_certify;
        Alcotest.test_case "check multicoloring" `Quick
          test_service_check_multicoloring;
        Alcotest.test_case "check graph sets" `Quick
          test_service_check_graph_sets;
        Alcotest.test_case "check wire parse" `Quick
          test_service_check_wire_parse ] );
    ( "server.rng",
      [ Alcotest.test_case "streams deterministic" `Quick
          test_rng_streams_deterministic;
        Alcotest.test_case "streams independent" `Quick
          test_rng_streams_independent;
        Alcotest.test_case "streams validation" `Quick
          test_rng_streams_validation ] ) ]
