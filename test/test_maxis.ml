(* Tests for Ps_maxis: independent sets, greedy heuristics, Caro–Wei,
   exact branch and bound, bounds, and the solver interface. *)

module G = Ps_graph.Graph
module Gen = Ps_graph.Gen
module Is = Ps_maxis.Independent_set
module Greedy = Ps_maxis.Greedy
module Cw = Ps_maxis.Caro_wei
module Exact = Ps_maxis.Exact
module Bounds = Ps_maxis.Bounds
module Approx = Ps_maxis.Approx
module Rng = Ps_util.Rng

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Independent_set *)

let test_is_basics () =
  let g = Gen.path 4 in
  let s = Is.of_list g [ 0; 2 ] in
  check "size" 2 (Is.size s);
  check_bool "independent" true (Is.is_independent g s);
  check_bool "{0,2} maximal (1~0, 3~2)" true (Is.is_maximal g s);
  (* {0} alone is not maximal: vertices 2 and 3 are unblocked. *)
  check_bool "{0} not maximal" false (Is.is_maximal g (Is.of_list g [ 0 ]));
  (* {0,3} on path 0-1-2-3: 1~0 and 2~3, so it is maximal too. *)
  check_bool "{0,3} maximal" true (Is.is_maximal g (Is.of_list g [ 0; 3 ]))

let test_is_dependent_detected () =
  let g = Gen.path 4 in
  let s = Is.of_list g [ 0; 1 ] in
  check_bool "dependent" false (Is.is_independent g s);
  check_bool "verify raises" true
    (try
       Is.verify_exn g s;
       false
     with Invalid_argument _ -> true)

let test_is_of_indicator () =
  let s = Is.of_indicator [| true; false; true |] in
  Alcotest.(check (list int)) "members" [ 0; 2 ] (Is.to_list s)

let test_is_make_maximal () =
  let g = Gen.path 5 in
  let s = Is.make_maximal g (Is.of_list g [ 2 ]) in
  check_bool "maximal" true (Is.is_maximal g s);
  check_bool "contains seed" true (Ps_util.Bitset.mem s 2)

let test_is_empty_graph_maximal () =
  let g = G.empty 4 in
  let s = Is.make_maximal g (Is.empty g) in
  check "all vertices" 4 (Is.size s)

let test_is_approximation_ratio () =
  let g = Gen.path 4 in
  let s = Is.of_list g [ 0; 2 ] in
  Alcotest.(check (float 1e-9)) "ratio" 1.0 (Is.approximation_ratio ~alpha:2 s);
  Alcotest.(check (float 1e-9)) "ratio 2" 2.0
    (Is.approximation_ratio ~alpha:4 s)

(* ------------------------------------------------------------------ *)
(* Greedy *)

let families rng =
  [ Gen.ring 11; Gen.complete 8; Gen.grid 4 5; Gen.star 9;
    Gen.gnp rng 60 0.1; Gen.gnp rng 60 0.4; G.empty 7;
    Gen.disjoint_cliques 5 4 ]

let test_greedy_min_degree_valid () =
  let rng = Rng.create 1 in
  List.iter
    (fun g ->
      let s = Greedy.min_degree g in
      check_bool "independent" true (Is.is_independent g s);
      check_bool "maximal" true (Is.is_maximal g s))
    (families rng)

let test_greedy_turan_bound () =
  let rng = Rng.create 2 in
  List.iter
    (fun g ->
      let s = Greedy.min_degree g in
      let n = G.n_vertices g and d = G.max_degree g in
      check_bool "n/(Δ+1)" true (Is.size s * (d + 1) >= n))
    (families rng)

let test_greedy_disjoint_cliques_optimal () =
  let g = Gen.disjoint_cliques 6 5 in
  check "one per clique" 6 (Is.size (Greedy.min_degree g))

let test_greedy_star_optimal () =
  (* min-degree greedy picks leaves first: n-1 leaves. *)
  check "all leaves" 9 (Is.size (Greedy.min_degree (Gen.star 10)))

let test_greedy_adversary_valid_but_weaker () =
  let g = Gen.star 10 in
  let bad = Greedy.max_degree_adversary g in
  check_bool "still independent" true (Is.is_independent g bad);
  check_bool "still maximal" true (Is.is_maximal g bad);
  (* anti-greedy takes the center first: only 1 vertex *)
  check "center only" 1 (Is.size bad)

let test_greedy_in_order () =
  let g = Gen.path 4 in
  let s = Greedy.in_order g [| 1; 3; 0; 2 |] in
  Alcotest.(check (list int)) "first-fit along order" [ 1; 3 ] (Is.to_list s)

(* ------------------------------------------------------------------ *)
(* Caro–Wei *)

let test_caro_wei_valid () =
  let rng = Rng.create 3 in
  List.iter
    (fun g ->
      let s = Cw.run rng g in
      check_bool "independent" true (Is.is_independent g s);
      let sm = Cw.run_maximal rng g in
      check_bool "maximal independent" true (Is.is_maximal g sm))
    (families rng)

let test_caro_wei_meets_turan_on_average () =
  let rng = Rng.create 4 in
  let g = Gen.gnp rng 100 0.1 in
  let bound = Cw.expected_size_bound g in
  let trials = 60 in
  let total = ref 0 in
  for _ = 1 to trials do
    total := !total + Is.size (Cw.run rng g)
  done;
  let mean = float_of_int !total /. float_of_int trials in
  (* sample mean within 20% of the Turán bound (it should be >= bound) *)
  check_bool "mean >= 0.8 * bound" true (mean >= 0.8 *. bound)

let test_caro_wei_best_of_monotone () =
  let g = Gen.gnp (Rng.create 5) 80 0.15 in
  let one = Is.size (Cw.run_maximal (Rng.create 6) g) in
  let best = Is.size (Cw.best_of (Rng.create 6) 16 g) in
  check_bool "best-of >= single (same stream start)" true (best >= one)

let test_expected_size_bound_complete () =
  (* K_n: sum of 1/n = 1. *)
  Alcotest.(check (float 1e-9)) "K8" 1.0
    (Cw.expected_size_bound (Gen.complete 8))

(* ------------------------------------------------------------------ *)
(* Exact *)

let test_exact_known_values () =
  List.iter
    (fun (g, alpha, label) ->
      Alcotest.(check int) label alpha (Exact.independence_number g))
    [ (Gen.complete 7, 1, "K7");
      (Gen.path 5, 3, "P5");
      (Gen.ring 6, 3, "C6");
      (Gen.ring 7, 3, "C7");
      (Gen.star 9, 8, "star");
      (G.empty 6, 6, "empty");
      (Gen.grid 3 3, 5, "3x3 grid");
      (Gen.complete_bipartite 3 5, 5, "K35");
      (Gen.disjoint_cliques 4 3, 4, "4xK3");
      (Gen.balanced_tree 2 3, 10, "binary tree depth 3") ]

let test_exact_result_is_independent () =
  let rng = Rng.create 7 in
  for _ = 1 to 10 do
    let g = Gen.gnp rng 25 0.3 in
    let s = Exact.maximum g in
    check_bool "independent" true (Is.is_independent g s)
  done

let test_exact_dominates_greedy () =
  let rng = Rng.create 8 in
  for _ = 1 to 10 do
    let g = Gen.gnp rng 22 0.25 in
    check_bool "exact >= greedy" true
      (Exact.independence_number g >= Is.size (Greedy.min_degree g))
  done

let test_exact_budget () =
  (* A hard-ish instance with a tiny budget must return None; a generous
     budget must succeed. *)
  let g = Gen.gnp (Rng.create 9) 40 0.3 in
  Alcotest.(check bool) "tiny budget gives up" true
    (Exact.maximum_within ~budget:2 g = None);
  check_bool "large budget succeeds" true
    (Exact.maximum_within ~budget:10_000_000 g <> None)

(* ------------------------------------------------------------------ *)
(* Bounds *)

let test_bounds_sandwich () =
  let rng = Rng.create 10 in
  for _ = 1 to 10 do
    let g = Gen.gnp rng 24 0.3 in
    let alpha = Exact.independence_number g in
    let lower, upper = Bounds.sandwich g in
    check_bool "lower <= alpha" true (lower <= float_of_int alpha +. 1e-9);
    check_bool "alpha <= upper" true (alpha <= upper)
  done

let test_bounds_clique_cover_complete () =
  check "K9 cover" 1 (Bounds.clique_cover_upper (Gen.complete 9))

let test_bounds_clique_cover_empty () =
  check "empty cover" 8 (Bounds.clique_cover_upper (G.empty 8))

let test_bounds_matching_path () =
  (* P4 has a perfect matching of size 2: upper = 4 - 2 = 2 = alpha. *)
  check "P4 matching bound" 2 (Bounds.trivial_upper (Gen.path 4))

let test_bounds_greedy_coloring_upper () =
  let g = Gen.disjoint_cliques 3 4 in
  check_bool "cover >= alpha" true (Bounds.greedy_coloring_upper g >= 3)

(* ------------------------------------------------------------------ *)
(* Approx / solver interface *)

let test_solvers_all_valid () =
  let rng = Rng.create 11 in
  let g = Gen.gnp rng 50 0.15 in
  List.iter
    (fun solver ->
      let s = Approx.solve_verified solver rng g in
      check_bool (solver.Approx.name ^ " independent") true
        (Is.is_independent g s))
    (Approx.exact :: Approx.all_heuristics)

let test_measure_exact_is_one () =
  let rng = Rng.create 12 in
  let g = Gen.gnp rng 20 0.2 in
  let m = Approx.measure Approx.exact rng g in
  check_bool "alpha exact" true m.Approx.alpha_exact;
  Alcotest.(check (float 1e-9)) "lambda 1" 1.0 m.Approx.lambda

let test_measure_greedy_lambda_bounded () =
  let rng = Rng.create 13 in
  for _ = 1 to 8 do
    let g = Gen.gnp rng 26 0.25 in
    let m = Approx.measure Approx.greedy_min_degree rng g in
    check_bool "lambda >= 1" true (m.Approx.lambda >= 1.0 -. 1e-9);
    check_bool "lambda <= Δ+1" true
      (m.Approx.lambda <= float_of_int (G.max_degree g + 1) +. 1e-9)
  done

let test_degrade_still_independent () =
  let rng = Rng.create 90 in
  let g = Gen.gnp rng 60 0.1 in
  List.iter
    (fun keep ->
      let solver = Approx.degrade ~keep Approx.greedy_min_degree in
      for _ = 1 to 5 do
        let s = Approx.solve_verified solver rng g in
        check_bool "independent" true (Is.is_independent g s);
        check_bool "nonempty" true (Is.size s >= 1)
      done)
    [ 0.5; 0.1; 0.01 ]

let test_degrade_shrinks () =
  let rng = Rng.create 91 in
  let g = Gen.gnp rng 100 0.05 in
  let full = Is.size (Ps_maxis.Greedy.min_degree g) in
  let solver = Approx.degrade ~keep:0.2 Approx.greedy_min_degree in
  let total = ref 0 in
  for _ = 1 to 20 do
    total := !total + Is.size (solver.Approx.solve rng g)
  done;
  let mean = float_of_int !total /. 20.0 in
  check_bool "about 20% kept" true
    (mean < 0.4 *. float_of_int full && mean > 0.05 *. float_of_int full)

let test_degrade_rejects_bad_keep () =
  check_bool "keep=0 rejected" true
    (try
       ignore (Approx.degrade ~keep:0.0 Approx.caro_wei);
       false
     with Invalid_argument _ -> true)

let test_measure_falls_back_to_bound () =
  let g = Gen.gnp (Rng.create 14) 60 0.3 in
  let m = Approx.measure ~exact_budget:2 Approx.greedy_min_degree
            (Rng.create 15) g in
  check_bool "not exact" false m.Approx.alpha_exact;
  check_bool "ref is an upper bound" true
    (m.Approx.alpha_ref >= Is.size (Greedy.min_degree g))

(* ------------------------------------------------------------------ *)
(* Vertex cover *)

module Vc = Ps_maxis.Vertex_cover

let test_vc_duality () =
  let rng = Rng.create 80 in
  for _ = 1 to 8 do
    let g = Gen.gnp rng 24 0.25 in
    let is = Exact.maximum g in
    let cover = Vc.of_independent_set g is in
    check_bool "complement covers" true (Vc.is_cover g cover);
    (* Gallai: tau = n - alpha *)
    check "gallai" (G.n_vertices g - Is.size is)
      (Ps_util.Bitset.cardinal cover);
    let back = Vc.to_independent_set g cover in
    check_bool "roundtrip" true (Ps_util.Bitset.equal is back)
  done

let test_vc_of_matching_two_approx () =
  let rng = Rng.create 81 in
  for _ = 1 to 8 do
    let g = Gen.gnp rng 22 0.2 in
    let m = Ps_graph.Matching.greedy g in
    let cover = Vc.of_matching g m in
    check_bool "covers" true (Vc.is_cover g cover);
    let tau = Option.get (Vc.minimum_size_within ~budget:1_000_000 g) in
    check_bool "within 2x" true (Ps_util.Bitset.cardinal cover <= 2 * tau)
  done

let test_vc_verify_raises () =
  let g = Gen.path 3 in
  check_bool "raises" true
    (try
       Vc.verify_exn g (Ps_util.Bitset.create 3);
       false
     with Invalid_argument _ -> true)

let test_vc_known_values () =
  let tau g = Option.get (Vc.minimum_size_within ~budget:1_000_000 g) in
  check "star" 1 (tau (Gen.star 9));
  check "K6" 5 (tau (Gen.complete 6));
  check "C6" 3 (tau (Gen.ring 6));
  check "empty" 0 (tau (G.empty 7))

(* ------------------------------------------------------------------ *)
(* qcheck properties *)

let arbitrary_gnp =
  QCheck.make
    ~print:(fun (seed, n, p) -> Printf.sprintf "seed=%d n=%d p=%d%%" seed n p)
    QCheck.Gen.(triple (int_bound 500) (int_range 1 24) (int_bound 80))

let graph_of (seed, n, p) =
  Gen.gnp (Rng.create seed) n (float_of_int p /. 100.0)

let prop_greedy_independent_maximal =
  QCheck.Test.make ~count:100 ~name:"greedy min-degree: independent+maximal"
    arbitrary_gnp (fun params ->
      let g = graph_of params in
      let s = Greedy.min_degree g in
      Is.is_independent g s && Is.is_maximal g s)

let prop_exact_at_least_heuristics =
  QCheck.Test.make ~count:40
    ~name:"exact alpha >= every heuristic's set size" arbitrary_gnp
    (fun params ->
      let g = graph_of params in
      let alpha = Exact.independence_number g in
      let rng = Rng.create (Hashtbl.hash params) in
      List.for_all
        (fun solver ->
          Is.size (Approx.solve_verified solver rng g) <= alpha)
        Approx.all_heuristics)

let prop_exact_within_bounds =
  QCheck.Test.make ~count:40 ~name:"exact alpha within sandwich bounds"
    arbitrary_gnp (fun params ->
      let g = graph_of params in
      let alpha = Exact.independence_number g in
      let lower, upper = Bounds.sandwich g in
      lower <= float_of_int alpha +. 1e-9 && alpha <= upper)

let prop_caro_wei_independent =
  QCheck.Test.make ~count:60 ~name:"Caro–Wei set independent" arbitrary_gnp
    (fun params ->
      let g = graph_of params in
      let rng = Rng.create (Hashtbl.hash params) in
      Is.is_independent g (Cw.run rng g))

let prop_make_maximal_extends =
  QCheck.Test.make ~count:60 ~name:"make_maximal extends and is maximal"
    arbitrary_gnp (fun params ->
      let g = graph_of params in
      let seed = Greedy.in_order g
                   (Rng.permutation (Rng.create (Hashtbl.hash params))
                      (G.n_vertices g)) in
      let extended = Is.make_maximal g seed in
      Ps_util.Bitset.subset seed extended && Is.is_maximal g extended)

let props =
  List.map QCheck_alcotest.to_alcotest
    [ prop_greedy_independent_maximal;
      prop_exact_at_least_heuristics;
      prop_exact_within_bounds;
      prop_caro_wei_independent;
      prop_make_maximal_extends ]

let suites =
  [ ( "maxis.independent_set",
      [ Alcotest.test_case "basics" `Quick test_is_basics;
        Alcotest.test_case "dependent detected" `Quick
          test_is_dependent_detected;
        Alcotest.test_case "of_indicator" `Quick test_is_of_indicator;
        Alcotest.test_case "make_maximal" `Quick test_is_make_maximal;
        Alcotest.test_case "empty graph" `Quick test_is_empty_graph_maximal;
        Alcotest.test_case "approximation ratio" `Quick
          test_is_approximation_ratio ] );
    ( "maxis.greedy",
      [ Alcotest.test_case "min-degree valid" `Quick
          test_greedy_min_degree_valid;
        Alcotest.test_case "Turán bound" `Quick test_greedy_turan_bound;
        Alcotest.test_case "disjoint cliques optimal" `Quick
          test_greedy_disjoint_cliques_optimal;
        Alcotest.test_case "star optimal" `Quick test_greedy_star_optimal;
        Alcotest.test_case "adversary valid" `Quick
          test_greedy_adversary_valid_but_weaker;
        Alcotest.test_case "in-order" `Quick test_greedy_in_order ] );
    ( "maxis.caro_wei",
      [ Alcotest.test_case "valid" `Quick test_caro_wei_valid;
        Alcotest.test_case "meets Turán on average" `Quick
          test_caro_wei_meets_turan_on_average;
        Alcotest.test_case "best-of monotone" `Quick
          test_caro_wei_best_of_monotone;
        Alcotest.test_case "bound on K_n" `Quick
          test_expected_size_bound_complete ] );
    ( "maxis.exact",
      [ Alcotest.test_case "known values" `Quick test_exact_known_values;
        Alcotest.test_case "independent" `Quick
          test_exact_result_is_independent;
        Alcotest.test_case "dominates greedy" `Quick
          test_exact_dominates_greedy;
        Alcotest.test_case "budget" `Quick test_exact_budget ] );
    ( "maxis.bounds",
      [ Alcotest.test_case "sandwich" `Quick test_bounds_sandwich;
        Alcotest.test_case "clique cover complete" `Quick
          test_bounds_clique_cover_complete;
        Alcotest.test_case "clique cover empty" `Quick
          test_bounds_clique_cover_empty;
        Alcotest.test_case "matching bound" `Quick test_bounds_matching_path;
        Alcotest.test_case "greedy coloring upper" `Quick
          test_bounds_greedy_coloring_upper ] );
    ( "maxis.approx",
      [ Alcotest.test_case "solvers valid" `Quick test_solvers_all_valid;
        Alcotest.test_case "exact lambda 1" `Quick test_measure_exact_is_one;
        Alcotest.test_case "greedy lambda bounded" `Quick
          test_measure_greedy_lambda_bounded;
        Alcotest.test_case "bound fallback" `Quick
          test_measure_falls_back_to_bound;
        Alcotest.test_case "degrade independent" `Quick
          test_degrade_still_independent;
        Alcotest.test_case "degrade shrinks" `Quick test_degrade_shrinks;
        Alcotest.test_case "degrade validates keep" `Quick
          test_degrade_rejects_bad_keep ] );
    ( "maxis.vertex_cover",
      [ Alcotest.test_case "duality" `Quick test_vc_duality;
        Alcotest.test_case "matching 2-approx" `Quick
          test_vc_of_matching_two_approx;
        Alcotest.test_case "verify raises" `Quick test_vc_verify_raises;
        Alcotest.test_case "known values" `Quick test_vc_known_values ] );
    ("maxis.properties", props) ]
