(* Golden tests for the interprocedural effect analyzer.

   The fixtures live in analysis_corpus/ — a tiny dune library compiled
   only so its .cmt typedtrees exist.  Each *_unguarded module stages
   exactly one violation (race, blocking, escape) and each *_guarded
   module the corresponding repaired or annotated shape, so the
   expectations below are exact: one finding per seeded module, with
   the staged call chain, and silence on every repaired one.

   The suppression scanner gets direct unit tests here too, since its
   multi-line-comment behaviour is what the in-tree annotations rely
   on. *)

module Cg = Ps_analysis.Callgraph
module Ef = Ps_analysis.Effects
module Rp = Ps_analysis.Report
module Sup = Ps_analysis.Suppress

let corpus_cmt_dir = "analysis_corpus"

let graph = lazy (Cg.build ~cmt_dirs:[ corpus_cmt_dir ])

let findings = lazy (Ef.run (Lazy.force graph) ~enabled:(fun _ -> true))

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  n = 0 || go 0

let in_file name (f : Rp.finding) = Filename.basename f.Rp.f_pos.file = name

let file_findings name = List.filter (in_file name) (Lazy.force findings)

let chain_mentions (f : Rp.finding) needle =
  List.exists (fun (s : Rp.step) -> contains ~needle s.Rp.s_name) f.Rp.chain

let check_rules name expected =
  Alcotest.(check (list string))
    (name ^ " rules") expected
    (List.map (fun (f : Rp.finding) -> f.Rp.rule) (file_findings name))

(* ------------------------------------------------------------------ *)
(* Effect rules over the corpus *)

let test_corpus_compiled () =
  (* If the cmt dir moved, every golden test below would pass
     vacuously; fail loudly instead. *)
  Alcotest.(check bool)
    "corpus cmt dir exists" true
    (Sys.file_exists corpus_cmt_dir && Sys.is_directory corpus_cmt_dir);
  Alcotest.(check bool)
    "corpus produced findings" true
    (Lazy.force findings <> [])

let test_race_seeded () =
  check_rules "race_unguarded.ml" [ "race" ];
  match file_findings "race_unguarded.ml" with
  | [ f ] ->
      Alcotest.(check bool)
        "names the shared ref" true
        (contains ~needle:"total" f.Rp.message);
      Alcotest.(check bool)
        "chain roots at the spawn" true
        (chain_mentions f "Domain.spawn");
      Alcotest.(check bool)
        "chain reaches the writer" true (chain_mentions f "bump")
  | _ -> Alcotest.fail "expected exactly one race finding"

let test_race_repaired_silent () = check_rules "race_guarded.ml" []

let test_blocking_seeded () =
  check_rules "block_unguarded.ml" [ "blocking" ];
  match file_findings "block_unguarded.ml" with
  | [ f ] ->
      Alcotest.(check bool)
        "names the primitive" true
        (contains ~needle:"input_line" f.Rp.message);
      Alcotest.(check bool)
        "chain roots at the annotated pump" true (chain_mentions f "pump");
      Alcotest.(check bool)
        "chain reaches the helper" true (chain_mentions f "parse")
  | _ -> Alcotest.fail "expected exactly one blocking finding"

let test_blocking_repaired_silent () = check_rules "block_guarded.ml" []

let test_escape_seeded () =
  check_rules "escape_unguarded.ml" [ "escape" ];
  match file_findings "escape_unguarded.ml" with
  | [ f ] ->
      Alcotest.(check bool)
        "names the exception" true
        (contains ~needle:"Failure" f.Rp.message);
      Alcotest.(check bool)
        "chain roots at the thread entry" true
        (chain_mentions f "Thread.create");
      Alcotest.(check bool)
        "chain reaches the raiser" true (chain_mentions f "parse")
  | _ -> Alcotest.fail "expected exactly one escape finding"

let test_escape_repaired_silent () = check_rules "escape_guarded.ml" []

(* The CI self-checks run pslint with --disable RULE and expect the
   seeded probe to go quiet; this is the library half of that switch. *)
let test_disable_switch () =
  let g = Lazy.force graph in
  let without rule = Ef.run g ~enabled:(fun r -> r <> rule) in
  let rules fs = List.sort_uniq String.compare (List.map (fun (f : Rp.finding) -> f.Rp.rule) fs) in
  Alcotest.(check (list string))
    "race disabled" [ "blocking"; "escape" ]
    (rules (without Ef.Race));
  Alcotest.(check (list string))
    "blocking disabled" [ "escape"; "race" ]
    (rules (without Ef.Blocking));
  Alcotest.(check (list string))
    "escape disabled" [ "blocking"; "race" ]
    (rules (without Ef.Escape));
  Alcotest.(check (list string))
    "all disabled" []
    (rules (Ef.run g ~enabled:(fun _ -> false)))

(* ------------------------------------------------------------------ *)
(* Suppression scanner *)

let test_suppress_single_line () =
  let t = Sup.scan "let a = 1 (* pslint: allow race *)\nlet b = 2\n" in
  Alcotest.(check bool)
    "on the comment line" true
    (Sup.suppressed t ~rule:"race" ~line:1);
  Alcotest.(check bool)
    "on the following line" true
    (Sup.suppressed t ~rule:"race" ~line:2);
  Alcotest.(check bool)
    "not two lines later" false
    (Sup.suppressed t ~rule:"race" ~line:3);
  Alcotest.(check bool)
    "not another rule" false
    (Sup.suppressed t ~rule:"blocking" ~line:1)

let test_suppress_multi_line_comment () =
  (* The marker on the last line of a spanning comment must cover the
     whole span plus the next line — the shape the in-tree dispatcher
     annotations use. *)
  let t =
    Sup.scan
      "let a = 1\n\
       (* parked between batches is the idle state:\n\
      \   pslint: allow blocking *)\n\
       let b = 2\n\
       let c = 3\n"
  in
  List.iter
    (fun line ->
      Alcotest.(check bool)
        (Printf.sprintf "line %d covered" line)
        true
        (Sup.suppressed t ~rule:"blocking" ~line))
    [ 2; 3; 4 ];
  Alcotest.(check bool)
    "line after the covered span" false
    (Sup.suppressed t ~rule:"blocking" ~line:5)

let test_suppress_stops_at_prose () =
  (* Rule names stop at the first non-[a-z0-9-] char, so trailing prose
     after a dash is not swallowed as rule names. *)
  let t =
    Sup.scan "(* pslint: allow blocking \xe2\x80\x94 the audited case *)\nx\n"
  in
  Alcotest.(check bool)
    "rule before the dash" true
    (Sup.suppressed t ~rule:"blocking" ~line:1);
  Alcotest.(check bool)
    "prose after the dash is not a rule" false
    (Sup.suppressed t ~rule:"the" ~line:1)

let test_suppress_allow_file () =
  let t = Sup.scan "(* pslint: allow-file global-state *)\nlet x = ref 0\n" in
  Alcotest.(check bool)
    "any line" true
    (Sup.suppressed t ~rule:"global-state" ~line:42);
  Alcotest.(check bool)
    "other rules untouched" false
    (Sup.suppressed t ~rule:"race" ~line:42)

let test_suppress_ignores_strings () =
  (* The scanner lexes real comments: a marker inside a string literal
     must not register. *)
  let t = Sup.scan "let s = \"(* pslint: allow race *)\"\nlet z = 0\n" in
  Alcotest.(check bool)
    "marker inside a string literal" false
    (Sup.suppressed t ~rule:"race" ~line:1)

let suites =
  [ ( "analysis.effects",
      [ Alcotest.test_case "corpus compiled" `Quick test_corpus_compiled;
        Alcotest.test_case "race seeded" `Quick test_race_seeded;
        Alcotest.test_case "race repaired silent" `Quick
          test_race_repaired_silent;
        Alcotest.test_case "blocking seeded" `Quick test_blocking_seeded;
        Alcotest.test_case "blocking repaired silent" `Quick
          test_blocking_repaired_silent;
        Alcotest.test_case "escape seeded" `Quick test_escape_seeded;
        Alcotest.test_case "escape repaired silent" `Quick
          test_escape_repaired_silent;
        Alcotest.test_case "disable switch" `Quick test_disable_switch ] );
    ( "analysis.suppress",
      [ Alcotest.test_case "single line" `Quick test_suppress_single_line;
        Alcotest.test_case "multi-line comment" `Quick
          test_suppress_multi_line_comment;
        Alcotest.test_case "stops at prose" `Quick test_suppress_stops_at_prose;
        Alcotest.test_case "allow-file" `Quick test_suppress_allow_file;
        Alcotest.test_case "ignores strings" `Quick
          test_suppress_ignores_strings ] ) ]
