(* Tests for Ps_hypergraph: structure, generators, derived graphs, I/O. *)

module H = Ps_hypergraph.Hypergraph
module Hgen = Ps_hypergraph.Hgen
module Primal = Ps_hypergraph.Primal
module Hio = Ps_hypergraph.Hio
module G = Ps_graph.Graph
module Rng = Ps_util.Rng

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let sample () = H.of_edges 5 [ [ 0; 1; 2 ]; [ 2; 3 ]; [ 3; 4; 0 ] ]

(* ------------------------------------------------------------------ *)
(* Structure *)

let test_basic () =
  let h = sample () in
  check "n" 5 (H.n_vertices h);
  check "m" 3 (H.n_edges h);
  check "rank" 3 (H.rank h);
  check "min size" 2 (H.min_edge_size h);
  Alcotest.(check (array int)) "edge sorted" [| 0; 3; 4 |] (H.edge h 2)

let test_edge_mem () =
  let h = sample () in
  check_bool "member" true (H.edge_mem h 0 2);
  check_bool "not member" false (H.edge_mem h 0 3)

let test_duplicate_vertices_collapse () =
  let h = H.of_edges 3 [ [ 1; 1; 2 ] ] in
  check "collapsed" 2 (H.edge_size h 0)

let test_duplicate_edges_kept () =
  (* E is a multiset in the paper; duplicate constraints stay distinct. *)
  let h = H.of_edges 3 [ [ 0; 1 ]; [ 0; 1 ] ] in
  check "m" 2 (H.n_edges h)

let test_rejects_empty_edge () =
  Alcotest.check_raises "empty edge" (Invalid_argument
    "Hypergraph: empty edge") (fun () -> ignore (H.of_edges 3 [ [] ]))

let test_rejects_out_of_range () =
  Alcotest.check_raises "range" (Invalid_argument
    "Hypergraph: vertex out of range") (fun () ->
      ignore (H.of_edges 2 [ [ 0; 2 ] ]))

let test_vertex_degree_incidence () =
  let h = sample () in
  check "deg 0" 2 (H.vertex_degree h 0);
  check "deg 2" 2 (H.vertex_degree h 2);
  check "deg 4" 1 (H.vertex_degree h 4);
  Alcotest.(check (list int)) "incidence 0" [ 0; 2 ] (H.incident_edges h 0);
  Alcotest.(check (list int)) "incidence 3" [ 1; 2 ] (H.incident_edges h 3)

let test_almost_uniform () =
  let h = sample () in
  (* sizes 3, 2, 3: k = 2, need 3 <= (1+eps)*2 *)
  Alcotest.(check (option int)) "eps=0.5" (Some 2)
    (H.almost_uniform_witness h 0.5);
  Alcotest.(check (option int)) "eps=0.25" None
    (H.almost_uniform_witness h 0.25);
  check_bool "is" true (H.is_almost_uniform h 0.5);
  check_bool "uniform always" true
    (H.is_almost_uniform (Hgen.disjoint_blocks ~blocks:3 ~size:2) 0.0)

let test_almost_uniform_edgeless () =
  let h = H.of_edges 4 [] in
  Alcotest.(check (option int)) "no edges" None
    (H.almost_uniform_witness h 1.0)

let test_restrict_edges () =
  let h = sample () in
  let h', back = H.restrict_edges h [ 2; 0 ] in
  check "m" 2 (H.n_edges h');
  check "same n" 5 (H.n_vertices h');
  Alcotest.(check (array int)) "back sorted" [| 0; 2 |] back;
  Alcotest.(check (array int)) "edge 1 is old 2" [| 0; 3; 4 |] (H.edge h' 1)

let test_restrict_empty () =
  let h = sample () in
  let h', _ = H.restrict_edges h [] in
  check "no edges" 0 (H.n_edges h');
  check "rank 0" 0 (H.rank h')

let test_equal () =
  check_bool "equal" true (H.equal (sample ()) (sample ()));
  check_bool "order matters in edges list" false
    (H.equal (sample ()) (H.of_edges 5 [ [ 2; 3 ]; [ 0; 1; 2 ]; [ 3; 4; 0 ] ]))

(* ------------------------------------------------------------------ *)
(* Generators *)

let test_gen_uniform () =
  let rng = Rng.create 1 in
  let h = Hgen.uniform_random rng ~n:20 ~m:15 ~k:4 in
  check "m" 15 (H.n_edges h);
  check "rank" 4 (H.rank h);
  check "min" 4 (H.min_edge_size h)

let test_gen_almost_uniform () =
  let rng = Rng.create 2 in
  let h = Hgen.almost_uniform_random rng ~n:30 ~m:25 ~k:4 ~eps:0.5 in
  check "m" 25 (H.n_edges h);
  check_bool "almost uniform" true (H.is_almost_uniform h 0.5);
  check_bool "sizes in [4,6]" true
    (H.min_edge_size h >= 4 && H.rank h <= 6)

let test_gen_interval () =
  let h = Hgen.interval ~n:10 [ (0, 3); (5, 5); (2, 9) ] in
  check "m" 3 (H.n_edges h);
  Alcotest.(check (array int)) "interval edge" [| 0; 1; 2; 3 |] (H.edge h 0);
  check "singleton" 1 (H.edge_size h 1);
  check "long" 8 (H.edge_size h 2)

let test_gen_interval_bad_range () =
  Alcotest.check_raises "bad" (Invalid_argument "Hgen.interval: bad range")
    (fun () -> ignore (Hgen.interval ~n:5 [ (3, 2) ]))

let test_gen_random_intervals () =
  let rng = Rng.create 3 in
  let h = Hgen.random_intervals rng ~n:50 ~m:30 ~min_len:2 ~max_len:6 in
  check "m" 30 (H.n_edges h);
  check_bool "lengths" true (H.min_edge_size h >= 2 && H.rank h <= 6);
  (* every edge must be a contiguous run *)
  for e = 0 to H.n_edges h - 1 do
    let members = H.edge h e in
    Array.iteri
      (fun i v -> if i > 0 then check "contiguous" (members.(i - 1) + 1) v)
      members
  done

let test_gen_all_intervals () =
  let h = Hgen.all_intervals_of_length ~n:6 ~len:3 in
  check "count" 4 (H.n_edges h);
  check_bool "uniform" true (H.is_almost_uniform h 0.0)

let test_gen_closed_neighborhoods () =
  let g = Ps_graph.Gen.star 4 in
  let h = Hgen.closed_neighborhoods g in
  check "m = n" 4 (H.n_edges h);
  check "center edge full" 4 (H.edge_size h 0);
  check "leaf edge" 2 (H.edge_size h 1)

let test_gen_sunflower () =
  let h = Hgen.sunflower ~n_petals:3 ~core:2 ~petal:2 in
  check "n" 8 (H.n_vertices h);
  check "m" 3 (H.n_edges h);
  check "edge size" 4 (H.edge_size h 0);
  (* all edges share exactly the core *)
  check_bool "core shared" true (H.edge_mem h 0 0 && H.edge_mem h 2 0)

let test_gen_from_graph () =
  let g = Ps_graph.Gen.path 4 in
  let h = Hgen.from_graph g in
  check "m" 3 (H.n_edges h);
  check "2-uniform" 2 (H.rank h);
  check_bool "uniform" true (H.is_almost_uniform h 0.0);
  (* a proper 2-coloring of the path is conflict-free on its edges *)
  let proper = [| 0; 1; 0; 1 |] in
  check_bool "proper coloring is CF" true
    (Ps_cfc.Cf_coloring.is_conflict_free h proper);
  (* a monochromatic pair breaks exactly its edge *)
  let mono = [| 0; 0; 1; 0 |] in
  check_bool "mono edge unhappy" false (Ps_cfc.Cf_coloring.happy h mono 0);
  (* coloring exactly one endpoint also works *)
  let half = [| 0; -1; 0; -1 |] in
  check_bool "half-colored CF" true
    (Ps_cfc.Cf_coloring.is_conflict_free h half)

let test_gen_disjoint_blocks () =
  let h = Hgen.disjoint_blocks ~blocks:4 ~size:3 in
  check "m" 4 (H.n_edges h);
  for v = 0 to H.n_vertices h - 1 do
    check "degree 1" 1 (H.vertex_degree h v)
  done

(* ------------------------------------------------------------------ *)
(* Derived graphs *)

let test_primal () =
  let h = sample () in
  let g = Primal.primal h in
  check "n" 5 (G.n_vertices g);
  check_bool "0-1 share edge" true (G.has_edge g 0 1);
  check_bool "1-3 no shared edge" false (G.has_edge g 1 3);
  check_bool "0-4 share edge 2" true (G.has_edge g 0 4)

let test_incidence () =
  let h = sample () in
  let g = Primal.incidence h in
  check "n + m vertices" 8 (G.n_vertices g);
  check "edges = sum of sizes" 8 (G.n_edges g);
  check_bool "v0-e0" true (G.has_edge g 0 5);
  check_bool "v0-e1" false (G.has_edge g 0 6)

let test_dual () =
  let h = sample () in
  let d = Primal.dual h in
  (* dual: vertices = 3 edges; edges = one per hypergraph vertex with
     degree >= 1 (all 5 here) *)
  check "dual n" 3 (H.n_vertices d);
  check "dual m" 5 (H.n_edges d)

let test_line_graph () =
  let h = sample () in
  let lg = Primal.line_graph h in
  check "n = m" 3 (G.n_vertices lg);
  check_bool "e0-e1 intersect (vertex 2)" true (G.has_edge lg 0 1);
  check_bool "e0-e2 intersect (vertex 0)" true (G.has_edge lg 0 2);
  check_bool "e1-e2 intersect (vertex 3)" true (G.has_edge lg 1 2)

let test_line_graph_disjoint () =
  let h = Hgen.disjoint_blocks ~blocks:3 ~size:2 in
  check "no intersections" 0 (G.n_edges (Primal.line_graph h))

(* ------------------------------------------------------------------ *)
(* Set cover *)

module Sc = Ps_hypergraph.Set_cover

let test_set_cover_verify () =
  let h = sample () in
  check_bool "all edges cover" true
    (Sc.is_cover h [ 0; 1; 2 ]);
  (* edges 0 = {0,1,2} and 2 = {0,3,4} cover everything *)
  check_bool "two suffice" true (Sc.is_cover h [ 0; 2 ]);
  check_bool "one is not enough" false (Sc.is_cover h [ 0 ]);
  check_bool "verify raises" true
    (try
       Sc.verify_exn h [ 1 ];
       false
     with Invalid_argument _ -> true)

let test_set_cover_isolated_vertices_ignored () =
  (* vertex 4 has degree 0: it cannot and need not be covered *)
  let h = H.of_edges 5 [ [ 0; 1 ]; [ 2; 3 ] ] in
  check_bool "covers coverable part" true (Sc.is_cover h [ 0; 1 ])

let test_set_cover_greedy_valid () =
  let rng = Rng.create 41 in
  List.iter
    (fun h ->
      let c = Sc.greedy h in
      check_bool "greedy covers" true (Sc.is_cover h c))
    [ sample ();
      Hgen.uniform_random rng ~n:30 ~m:20 ~k:5;
      Hgen.random_intervals rng ~n:40 ~m:25 ~min_len:2 ~max_len:8;
      Hgen.disjoint_blocks ~blocks:6 ~size:3;
      H.of_edges 4 [] ]

let test_set_cover_greedy_picks_big_first () =
  (* one huge edge covering everything: greedy takes exactly it *)
  let h = H.of_edges 6 [ [ 0; 1 ]; [ 0; 1; 2; 3; 4; 5 ]; [ 4; 5 ] ] in
  Alcotest.(check (list int)) "single pick" [ 1 ] (Sc.greedy h)

let test_set_cover_exact_known () =
  let number h = Option.get (Sc.cover_number_within ~budget:1_000_000 h) in
  check "blocks need all" 4 (number (Hgen.disjoint_blocks ~blocks:4 ~size:2));
  check "sample needs 2" 2 (number (sample ()));
  check "edgeless needs 0" 0 (number (H.of_edges 3 []))

let test_set_cover_exact_at_most_greedy () =
  let rng = Rng.create 42 in
  for _ = 1 to 8 do
    let h = Hgen.uniform_random rng ~n:16 ~m:10 ~k:4 in
    let exact = Option.get (Sc.cover_number_within ~budget:2_000_000 h) in
    check_bool "exact <= greedy" true (exact <= List.length (Sc.greedy h))
  done

let test_set_cover_equals_domination_on_neighborhoods () =
  (* Minimum set cover of the closed-neighborhood hypergraph IS the
     domination number — the classic correspondence, checked exactly. *)
  let rng = Rng.create 43 in
  for _ = 1 to 5 do
    let g = Ps_graph.Gen.gnp rng 14 0.2 in
    let h = Hgen.closed_neighborhoods g in
    let cover = Option.get (Sc.cover_number_within ~budget:2_000_000 h) in
    let gamma =
      Option.get
        (Ps_graph.Dominating.domination_number_within ~budget:2_000_000 g)
    in
    check "cover = gamma" gamma cover
  done

let test_set_cover_budget () =
  let rng = Rng.create 44 in
  let h = Hgen.uniform_random rng ~n:30 ~m:25 ~k:3 in
  check_bool "tiny budget" true (Sc.minimum_within ~budget:1 h = None)

(* ------------------------------------------------------------------ *)
(* I/O *)

let test_hio_roundtrip () =
  let h = sample () in
  check_bool "roundtrip" true (H.equal h (Hio.of_text (Hio.to_text h)))

let test_hio_random_roundtrip () =
  let rng = Rng.create 5 in
  let h = Hgen.almost_uniform_random rng ~n:40 ~m:30 ~k:3 ~eps:1.0 in
  check_bool "roundtrip" true (H.equal h (Hio.of_text (Hio.to_text h)))

let test_hio_comments () =
  let h = Hio.of_text "# hypergraph\n3 1\n2 0 2\n" in
  check "m" 1 (H.n_edges h);
  Alcotest.(check (array int)) "edge" [| 0; 2 |] (H.edge h 0)

let test_hio_size_mismatch () =
  check_bool "size mismatch raises" true
    (try
       ignore (Hio.of_text "3 1\n3 0 1\n");
       false
     with Failure _ -> true)

let test_hio_whitespace_tolerance () =
  let h = Hio.of_text "3\t1\r\n2  0 \t 2 \r\n" in
  check "m" 1 (H.n_edges h);
  Alcotest.(check (array int)) "edge" [| 0; 2 |] (H.edge h 0)

let test_hio_rejects_out_of_range_vertex () =
  Alcotest.check_raises "id = n"
    (Failure "Hio.of_text: line 2: vertex id 3 out of range [0, 3)")
    (fun () -> ignore (Hio.of_text "3 1\n2 0 3\n"));
  Alcotest.check_raises "negative id"
    (Failure "Hio.of_text: line 2: vertex id -2 out of range [0, 3)")
    (fun () -> ignore (Hio.of_text "3 1\n2 -2 1\n"));
  Alcotest.check_raises "negative edge count"
    (Failure "Hio.of_text: line 1: edge count must be nonnegative")
    (fun () -> ignore (Hio.of_text "3 -1\n"))

let test_hio_file_roundtrip () =
  let h = sample () in
  let path = Filename.temp_file "pslocal" ".hg" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Hio.write_file path h;
      check_bool "file roundtrip" true (H.equal h (Hio.read_file path)))

(* ------------------------------------------------------------------ *)
(* qcheck properties *)

let arbitrary_hypergraph =
  QCheck.make
    ~print:(fun (seed, n, m, k) ->
      Printf.sprintf "hg seed=%d n=%d m=%d k=%d" seed n m k)
    QCheck.Gen.(
      quad (int_bound 1000) (int_range 4 25) (int_range 1 20) (int_range 1 4))

let hypergraph_of (seed, n, m, k) =
  let k = min k n in
  Hgen.almost_uniform_random (Rng.create seed) ~n ~m ~k ~eps:1.0

let prop_incidence_consistent =
  QCheck.Test.make ~count:100
    ~name:"vertex degrees equal incidence list lengths" arbitrary_hypergraph
    (fun params ->
      let h = hypergraph_of params in
      let ok = ref true in
      for v = 0 to H.n_vertices h - 1 do
        if H.vertex_degree h v <> List.length (H.incident_edges h v) then
          ok := false;
        List.iter
          (fun e -> if not (H.edge_mem h e v) then ok := false)
          (H.incident_edges h v)
      done;
      !ok)

let prop_sum_degrees_is_sum_sizes =
  QCheck.Test.make ~count:100 ~name:"Σ deg(v) = Σ |e|" arbitrary_hypergraph
    (fun params ->
      let h = hypergraph_of params in
      let degrees = ref 0 and sizes = ref 0 in
      for v = 0 to H.n_vertices h - 1 do
        degrees := !degrees + H.vertex_degree h v
      done;
      for e = 0 to H.n_edges h - 1 do
        sizes := !sizes + H.edge_size h e
      done;
      !degrees = !sizes)

let prop_primal_edge_iff_shared =
  QCheck.Test.make ~count:50 ~name:"primal adjacency iff a shared edge"
    arbitrary_hypergraph (fun params ->
      let h = hypergraph_of params in
      let g = Primal.primal h in
      let ok = ref true in
      for u = 0 to H.n_vertices h - 1 do
        for v = u + 1 to H.n_vertices h - 1 do
          let shared =
            List.exists
              (fun e -> H.edge_mem h e v)
              (H.incident_edges h u)
          in
          if shared <> G.has_edge g u v then ok := false
        done
      done;
      !ok)

let prop_hio_roundtrip =
  QCheck.Test.make ~count:50 ~name:"hypergraph IO roundtrip"
    arbitrary_hypergraph (fun params ->
      let h = hypergraph_of params in
      H.equal h (Hio.of_text (Hio.to_text h)))

(* Same separator randomization as the Gio test: runs of spaces/tabs,
   optional leading/trailing blanks, CRLF endings. *)
let mangle_whitespace rng text =
  let buf = Buffer.create (String.length text * 2) in
  let sep () =
    for _ = 0 to Rng.int rng 3 do
      Buffer.add_char buf (if Rng.bernoulli rng 0.5 then '\t' else ' ')
    done
  in
  String.split_on_char '\n' text
  |> List.iter (fun line ->
         if line <> "" then begin
           if Rng.bernoulli rng 0.3 then sep ();
           List.iteri
             (fun i tok ->
               if i > 0 then sep ();
               Buffer.add_string buf tok)
             (String.split_on_char ' ' line);
           if Rng.bernoulli rng 0.3 then sep ();
           if Rng.bernoulli rng 0.5 then Buffer.add_char buf '\r';
           Buffer.add_char buf '\n'
         end);
  Buffer.contents buf

let prop_hio_roundtrip_whitespace =
  QCheck.Test.make ~count:50
    ~name:"hypergraph IO roundtrip under randomized whitespace"
    arbitrary_hypergraph (fun params ->
      let seed, _, _, _ = params in
      let h = hypergraph_of params in
      let text = mangle_whitespace (Rng.create (seed + 1)) (Hio.to_text h) in
      H.equal h (Hio.of_text text))

let prop_restrict_preserves_edges =
  QCheck.Test.make ~count:50 ~name:"restrict keeps exactly chosen edges"
    arbitrary_hypergraph (fun params ->
      let h = hypergraph_of params in
      let keep =
        List.filter (fun e -> e mod 2 = 0)
          (List.init (H.n_edges h) (fun e -> e))
      in
      let h', back = H.restrict_edges h keep in
      H.n_edges h' = List.length keep
      && Array.to_list back = keep
      && List.for_all
           (fun i -> H.edge h' i = H.edge h back.(i))
           (List.init (H.n_edges h') (fun i -> i)))

let props =
  List.map QCheck_alcotest.to_alcotest
    [ prop_incidence_consistent;
      prop_sum_degrees_is_sum_sizes;
      prop_primal_edge_iff_shared;
      prop_hio_roundtrip;
      prop_hio_roundtrip_whitespace;
      prop_restrict_preserves_edges ]

let suites =
  [ ( "hypergraph.core",
      [ Alcotest.test_case "basic" `Quick test_basic;
        Alcotest.test_case "edge membership" `Quick test_edge_mem;
        Alcotest.test_case "duplicate vertices collapse" `Quick
          test_duplicate_vertices_collapse;
        Alcotest.test_case "duplicate edges kept" `Quick
          test_duplicate_edges_kept;
        Alcotest.test_case "rejects empty edge" `Quick
          test_rejects_empty_edge;
        Alcotest.test_case "rejects out of range" `Quick
          test_rejects_out_of_range;
        Alcotest.test_case "degree/incidence" `Quick
          test_vertex_degree_incidence;
        Alcotest.test_case "almost uniform" `Quick test_almost_uniform;
        Alcotest.test_case "almost uniform edgeless" `Quick
          test_almost_uniform_edgeless;
        Alcotest.test_case "restrict edges" `Quick test_restrict_edges;
        Alcotest.test_case "restrict to empty" `Quick test_restrict_empty;
        Alcotest.test_case "equality" `Quick test_equal ] );
    ( "hypergraph.gen",
      [ Alcotest.test_case "uniform" `Quick test_gen_uniform;
        Alcotest.test_case "almost uniform" `Quick test_gen_almost_uniform;
        Alcotest.test_case "interval" `Quick test_gen_interval;
        Alcotest.test_case "interval bad range" `Quick
          test_gen_interval_bad_range;
        Alcotest.test_case "random intervals" `Quick
          test_gen_random_intervals;
        Alcotest.test_case "all intervals" `Quick test_gen_all_intervals;
        Alcotest.test_case "closed neighborhoods" `Quick
          test_gen_closed_neighborhoods;
        Alcotest.test_case "sunflower" `Quick test_gen_sunflower;
        Alcotest.test_case "from graph" `Quick test_gen_from_graph;
        Alcotest.test_case "disjoint blocks" `Quick
          test_gen_disjoint_blocks ] );
    ( "hypergraph.derived",
      [ Alcotest.test_case "primal" `Quick test_primal;
        Alcotest.test_case "incidence" `Quick test_incidence;
        Alcotest.test_case "dual" `Quick test_dual;
        Alcotest.test_case "line graph" `Quick test_line_graph;
        Alcotest.test_case "line graph disjoint" `Quick
          test_line_graph_disjoint ] );
    ( "hypergraph.set_cover",
      [ Alcotest.test_case "verify" `Quick test_set_cover_verify;
        Alcotest.test_case "isolated ignored" `Quick
          test_set_cover_isolated_vertices_ignored;
        Alcotest.test_case "greedy valid" `Quick test_set_cover_greedy_valid;
        Alcotest.test_case "greedy picks big" `Quick
          test_set_cover_greedy_picks_big_first;
        Alcotest.test_case "exact known" `Quick test_set_cover_exact_known;
        Alcotest.test_case "exact <= greedy" `Quick
          test_set_cover_exact_at_most_greedy;
        Alcotest.test_case "cover = domination" `Quick
          test_set_cover_equals_domination_on_neighborhoods;
        Alcotest.test_case "budget" `Quick test_set_cover_budget ] );
    ( "hypergraph.io",
      [ Alcotest.test_case "roundtrip" `Quick test_hio_roundtrip;
        Alcotest.test_case "random roundtrip" `Quick
          test_hio_random_roundtrip;
        Alcotest.test_case "comments" `Quick test_hio_comments;
        Alcotest.test_case "whitespace tolerance" `Quick
          test_hio_whitespace_tolerance;
        Alcotest.test_case "out-of-range vertex" `Quick
          test_hio_rejects_out_of_range_vertex;
        Alcotest.test_case "size mismatch" `Quick test_hio_size_mismatch;
        Alcotest.test_case "file roundtrip" `Quick test_hio_file_roundtrip ]
    );
    ("hypergraph.properties", props) ]
