(* Tests for Ps_graph: construction, queries, generators, traversals,
   coloring, I/O. *)

module G = Ps_graph.Graph
module Gen = Ps_graph.Gen
module T = Ps_graph.Traverse
module C = Ps_graph.Coloring
module Gio = Ps_graph.Gio
module Rng = Ps_util.Rng

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Graph core *)

let triangle () = G.of_edges 3 [ (0, 1); (1, 2); (2, 0) ]

let test_graph_basic () =
  let g = triangle () in
  check "n" 3 (G.n_vertices g);
  check "m" 3 (G.n_edges g);
  check "deg" 2 (G.degree g 0);
  check_bool "edge" true (G.has_edge g 0 1);
  check_bool "edge sym" true (G.has_edge g 1 0);
  check_bool "no self edge" false (G.has_edge g 1 1)

let test_graph_duplicate_edges_collapse () =
  let g = G.of_edges 3 [ (0, 1); (1, 0); (0, 1) ] in
  check "m" 1 (G.n_edges g);
  check "deg 0" 1 (G.degree g 0)

let test_graph_rejects_self_loop () =
  Alcotest.check_raises "self loop" (Invalid_argument
    "Graph.of_edges: self-loop") (fun () ->
      ignore (G.of_edges 2 [ (1, 1) ]))

let test_graph_rejects_out_of_range () =
  Alcotest.check_raises "range" (Invalid_argument
    "Graph.of_edges: endpoint out of range") (fun () ->
      ignore (G.of_edges 2 [ (0, 2) ]))

let test_graph_neighbors_sorted () =
  let g = G.of_edges 5 [ (2, 4); (2, 0); (2, 3); (2, 1) ] in
  Alcotest.(check (array int)) "sorted" [| 0; 1; 3; 4 |] (G.neighbors g 2)

let test_graph_empty () =
  let g = G.empty 4 in
  check "m" 0 (G.n_edges g);
  check "max degree" 0 (G.max_degree g);
  Alcotest.(check (float 1e-9)) "avg" 0.0 (G.avg_degree g)

let test_graph_zero_vertices () =
  let g = G.empty 0 in
  check "n" 0 (G.n_vertices g);
  check "m" 0 (G.n_edges g)

let test_graph_edges_iteration () =
  let g = triangle () in
  Alcotest.(check (list (pair int int)))
    "edges once, lexicographic" [ (0, 1); (0, 2); (1, 2) ] (G.edges g)

let test_graph_fold_exists () =
  let g = triangle () in
  check "fold sum" 3 (G.fold_neighbors g 0 (fun a u -> a + u) 0);
  check_bool "exists" true (G.exists_neighbor g 0 (fun u -> u = 2));
  check_bool "not exists" false (G.exists_neighbor g 0 (fun u -> u = 0))

let test_induced_subgraph () =
  let g = G.of_edges 6 [ (0, 1); (1, 2); (2, 3); (3, 4); (4, 5); (5, 0) ] in
  let sub, back = G.induced_subgraph g [ 0; 1; 2 ] in
  check "n" 3 (G.n_vertices sub);
  check "m" 2 (G.n_edges sub);
  Alcotest.(check (array int)) "back map" [| 0; 1; 2 |] back

let test_induced_subgraph_relabeling () =
  let g = G.of_edges 6 [ (3, 5) ] in
  let sub, back = G.induced_subgraph g [ 5; 3 ] in
  (* back is sorted ascending *)
  Alcotest.(check (array int)) "back" [| 3; 5 |] back;
  check_bool "edge mapped" true (G.has_edge sub 0 1)

let test_complement () =
  let g = G.of_edges 4 [ (0, 1) ] in
  let c = G.complement g in
  check "m" 5 (G.n_edges c);
  check_bool "lost edge" false (G.has_edge c 0 1);
  check_bool "gained edge" true (G.has_edge c 2 3);
  (* double complement is identity *)
  check_bool "involution" true (G.equal g (G.complement c))

let test_union () =
  let a = G.of_edges 4 [ (0, 1) ] and b = G.of_edges 4 [ (1, 2); (0, 1) ] in
  let u = G.union a b in
  check "m" 2 (G.n_edges u);
  check_bool "subgraph a" true (G.is_subgraph a u);
  check_bool "subgraph b" true (G.is_subgraph b u)

let test_avg_max_degree () =
  let g = Gen.star 5 in
  check "max" 4 (G.max_degree g);
  Alcotest.(check (float 1e-9)) "avg" 1.6 (G.avg_degree g)

(* ------------------------------------------------------------------ *)
(* Generators *)

let test_gen_ring () =
  let g = Gen.ring 10 in
  check "m" 10 (G.n_edges g);
  check "regular" 2 (G.max_degree g);
  check_bool "connected" true (T.is_connected g);
  check "diameter" 5 (T.diameter g)

let test_gen_path () =
  let g = Gen.path 6 in
  check "m" 5 (G.n_edges g);
  check "diameter" 5 (T.diameter g)

let test_gen_complete () =
  let g = Gen.complete 7 in
  check "m" 21 (G.n_edges g);
  check "degree" 6 (G.max_degree g);
  check "diameter" 1 (T.diameter g)

let test_gen_complete_bipartite () =
  let g = Gen.complete_bipartite 3 4 in
  check "m" 12 (G.n_edges g);
  check_bool "no intra-left edge" false (G.has_edge g 0 1);
  check_bool "cross edge" true (G.has_edge g 0 3)

let test_gen_grid () =
  let g = Gen.grid 4 5 in
  check "n" 20 (G.n_vertices g);
  check "m" ((3 * 5) + (4 * 4)) (G.n_edges g);
  check "diameter" 7 (T.diameter g)

let test_gen_balanced_tree () =
  let g = Gen.balanced_tree 2 3 in
  check "n" 15 (G.n_vertices g);
  check "m" 14 (G.n_edges g);
  check_bool "connected" true (T.is_connected g)

let test_gen_gnp_extremes () =
  let rng = Rng.create 1 in
  check "p=0" 0 (G.n_edges (Gen.gnp rng 20 0.0));
  check "p=1" 190 (G.n_edges (Gen.gnp rng 20 1.0))

let test_gen_gnp_density () =
  let rng = Rng.create 2 in
  let n = 300 and p = 0.1 in
  let g = Gen.gnp rng n p in
  let expected = p *. float_of_int (n * (n - 1) / 2) in
  let actual = float_of_int (G.n_edges g) in
  check_bool "within 15% of expectation" true
    (abs_float (actual -. expected) /. expected < 0.15)

let test_gen_gnm () =
  let rng = Rng.create 3 in
  let g = Gen.gnm rng 50 200 in
  check "exact m" 200 (G.n_edges g);
  Alcotest.check_raises "too many" (Invalid_argument
    "Gen.gnm: m out of range") (fun () -> ignore (Gen.gnm rng 3 4))

let test_gen_random_regular_ish () =
  let rng = Rng.create 4 in
  let g = Gen.random_regular_ish rng 100 5 in
  check_bool "degree cap" true (G.max_degree g <= 5);
  check_bool "mostly d-regular" true
    (G.avg_degree g > 4.0)

let test_gen_random_tree () =
  let rng = Rng.create 5 in
  for n = 1 to 30 do
    let g = Gen.random_tree rng n in
    check "tree edges" (max 0 (n - 1)) (G.n_edges g);
    check_bool "connected" true (T.is_connected g)
  done

let test_gen_unit_interval () =
  let rng = Rng.create 6 in
  let g = Gen.unit_interval rng 100 20.0 in
  (* Interval graphs sorted by left endpoint: neighbors form runs, and the
     graph has no induced C4 — spot-check connectivity of neighborhoods. *)
  check_bool "nonempty" true (G.n_edges g > 0);
  for v = 0 to 98 do
    (* consecutive overlapping windows: neighbor sets are intervals *)
    let ns = G.neighbors g v in
    Array.iteri
      (fun i u ->
        if i > 0 then check_bool "contiguous ids" true (u > ns.(i - 1)))
      ns
  done

let test_gen_power_law () =
  let rng = Rng.create 7 in
  let g = Gen.power_law rng 200 2.5 in
  check "n" 200 (G.n_vertices g);
  check_bool "connected" true (T.is_connected g);
  check_bool "skewed" true (G.max_degree g > 3 * int_of_float (G.avg_degree g))

let test_gen_hypercube () =
  let g = Gen.hypercube 4 in
  check "n" 16 (G.n_vertices g);
  check "m = d*2^(d-1)" 32 (G.n_edges g);
  check "regular" 4 (G.max_degree g);
  check "diameter = d" 4 (T.diameter g);
  (* bipartite: 2-colorable *)
  check "chi" 2
    (Option.get (C.chromatic_number_within ~budget:1_000_000 g));
  check "Q0" 1 (G.n_vertices (Gen.hypercube 0))

let test_gen_petersen_invariants () =
  let g = Gen.petersen () in
  check "n" 10 (G.n_vertices g);
  check "m" 15 (G.n_edges g);
  check "3-regular" 3 (G.max_degree g);
  check "diameter" 2 (T.diameter g);
  check "alpha" 4 (Ps_maxis.Exact.independence_number g);
  check "chi" 3 (Option.get (C.chromatic_number_within ~budget:1_000_000 g));
  check "gamma" 3
    (Option.get (Ps_graph.Dominating.domination_number_within
                   ~budget:1_000_000 g));
  check "perfect matching" 5 (Ps_graph.Matching.size (Ps_graph.Matching.greedy g))

let test_gen_kneser () =
  (* K(5,2) is Petersen *)
  let k52 = Gen.kneser_petersen_family 5 in
  check "n" 10 (G.n_vertices k52);
  check "m" 15 (G.n_edges k52);
  check "alpha = n-1" 4 (Ps_maxis.Exact.independence_number k52);
  let k62 = Gen.kneser_petersen_family 6 in
  check "K(6,2) n" 15 (G.n_vertices k62);
  check "K(6,2) alpha" 5 (Ps_maxis.Exact.independence_number k62);
  check "K(6,2) chi = n-2" 4
    (Option.get (C.chromatic_number_within ~budget:5_000_000 k62))

let test_gen_crown () =
  let g = Gen.crown 4 in
  check "n" 8 (G.n_vertices g);
  check "m = n(n-1)" 12 (G.n_edges g);
  check_bool "matching pair non-adjacent" false (G.has_edge g 0 4);
  check_bool "cross pair adjacent" true (G.has_edge g 0 5);
  check "chi" 2 (Option.get (C.chromatic_number_within ~budget:1_000_000 g))

let test_gen_wheel () =
  let w5 = Gen.wheel 5 in
  check "n" 6 (G.n_vertices w5);
  check "m" 10 (G.n_edges w5);
  check "odd wheel chi" 4
    (Option.get (C.chromatic_number_within ~budget:1_000_000 w5));
  check "even wheel chi" 3
    (Option.get (C.chromatic_number_within ~budget:1_000_000 (Gen.wheel 6)));
  check "gamma" 1
    (Option.get (Ps_graph.Dominating.domination_number_within
                   ~budget:1_000_000 w5))

let test_gen_disjoint_cliques () =
  let g = Gen.disjoint_cliques 4 3 in
  check "n" 12 (G.n_vertices g);
  check "m" 12 (G.n_edges g);
  check "components" 4 (Array.length (T.connected_components g))

(* ------------------------------------------------------------------ *)
(* Traversals *)

let test_bfs_distances () =
  let g = Gen.path 5 in
  Alcotest.(check (array int)) "path distances" [| 0; 1; 2; 3; 4 |]
    (T.bfs_distances g 0)

let test_bfs_unreachable () =
  let g = G.of_edges 4 [ (0, 1) ] in
  let d = T.bfs_distances g 0 in
  check "reachable" 1 d.(1);
  check "unreachable" (-1) d.(2)

let test_bfs_multi () =
  let g = Gen.path 7 in
  let d = T.bfs_multi g [ 0; 6 ] in
  Alcotest.(check (array int)) "multi-source" [| 0; 1; 2; 3; 2; 1; 0 |] d

let test_ball () =
  let g = Gen.ring 10 in
  Alcotest.(check (list int)) "ball r=0" [ 0 ] (T.ball g 0 0);
  Alcotest.(check (list int)) "ball r=1" [ 0; 1; 9 ] (T.ball g 0 1);
  Alcotest.(check (list int)) "ball r=2" [ 0; 1; 2; 8; 9 ] (T.ball g 0 2)

let test_ball_subgraph () =
  let g = Gen.ring 10 in
  let sub, back = T.ball_subgraph g 0 2 in
  check "vertices" 5 (G.n_vertices sub);
  check "edges" 4 (G.n_edges sub);
  Alcotest.(check (array int)) "back" [| 0; 1; 2; 8; 9 |] back

let test_components () =
  let g = G.of_edges 7 [ (0, 1); (1, 2); (4, 5) ] in
  let comps = T.connected_components g in
  check "count" 4 (Array.length comps);
  let sizes = Array.map List.length comps |> Array.to_list
              |> List.sort compare in
  Alcotest.(check (list int)) "sizes" [ 1; 1; 2; 3 ] sizes

let test_eccentricity_diameter () =
  let g = Gen.grid 3 3 in
  check "center ecc" 2 (T.eccentricity g 4);
  check "corner ecc" 4 (T.eccentricity g 0);
  check "diameter" 4 (T.diameter g)

let test_diameter_disconnected () =
  check "disconnected" (-1) (T.diameter (G.of_edges 3 [ (0, 1) ]));
  check "singleton" 0 (T.diameter (G.empty 1));
  check "empty" 0 (T.diameter (G.empty 0))

let test_dfs_preorder () =
  let g = Gen.path 4 in
  Alcotest.(check (list int)) "preorder" [ 0; 1; 2; 3 ] (T.dfs_preorder g 0)

let test_distance () =
  let g = Gen.ring 12 in
  check "antipodal" 6 (T.distance g 0 6);
  check "adjacent" 1 (T.distance g 0 11)

let test_power_graph () =
  let g = Gen.ring 6 in
  check_bool "power 1 = g" true (G.equal (T.power g 1) g);
  check "power 0 edgeless" 0 (G.n_edges (T.power g 0));
  let p2 = T.power g 2 in
  check "ring^2 is 4-regular" 4 (G.max_degree p2);
  check_bool "distance-2 pair adjacent" true (G.has_edge p2 0 2);
  check_bool "antipodal not adjacent" false (G.has_edge p2 0 3);
  (* high enough power of a connected graph is complete *)
  check_bool "power diam = complete" true
    (G.equal (T.power g (T.diameter g)) (Gen.complete 6));
  (* edges of G^k are exactly pairs at distance <= k *)
  let g = Gen.grid 3 4 in
  let p = T.power g 3 in
  for u = 0 to G.n_vertices g - 1 do
    for v = u + 1 to G.n_vertices g - 1 do
      check_bool "iff distance <= 3" (T.distance g u v <= 3)
        (G.has_edge p u v)
    done
  done

(* ------------------------------------------------------------------ *)
(* Coloring *)

let test_coloring_greedy_proper () =
  let rng = Rng.create 11 in
  let g = Gen.gnp rng 80 0.1 in
  let c = C.greedy g in
  check_bool "proper" true (C.is_proper g c);
  check_bool "within Delta+1" true (C.max_color c <= G.max_degree g)

let test_coloring_greedy_path_two_colors () =
  let g = Gen.path 10 in
  let c = C.greedy g in
  check "two colors" 2 (C.num_colors c)

let test_coloring_partial () =
  let g = triangle () in
  let c = [| 0; 1; C.uncolored |] in
  check_bool "partial proper" true (C.is_proper_partial g c);
  check_bool "not total proper" false (C.is_proper g c);
  let bad = [| 0; 0; C.uncolored |] in
  check_bool "monochromatic edge" false (C.is_proper_partial g bad)

let test_coloring_classes () =
  let c = [| 0; 1; 0; C.uncolored; 1 |] in
  let classes = C.color_classes c in
  check "count" 2 (Array.length classes);
  Alcotest.(check (list int)) "class 0" [ 0; 2 ] classes.(0);
  Alcotest.(check (list int)) "class 1" [ 1; 4 ] classes.(1)

let test_chromatic_known_values () =
  let chi g = Option.get (C.chromatic_number_within ~budget:2_000_000 g) in
  check "empty" 1 (chi (G.empty 5));
  check "zero vertices" 0 (chi (G.empty 0));
  check "path" 2 (chi (Gen.path 6));
  check "even cycle" 2 (chi (Gen.ring 8));
  check "odd cycle" 3 (chi (Gen.ring 9));
  check "K7" 7 (chi (Gen.complete 7));
  check "bipartite" 2 (chi (Gen.complete_bipartite 4 5));
  check "grid" 2 (chi (Gen.grid 4 5));
  check "tree" 2 (chi (Gen.balanced_tree 3 2))

let test_chromatic_vs_greedy () =
  let rng = Rng.create 71 in
  for _ = 1 to 8 do
    let g = Gen.gnp rng 18 0.3 in
    let chi = Option.get (C.chromatic_number_within ~budget:2_000_000 g) in
    check_bool "chi <= greedy" true (chi <= C.num_colors (C.greedy g));
    (* witness coloring exists and is proper *)
    match C.k_colorable g chi with
    | Some f ->
        check_bool "witness proper" true (C.is_proper g f);
        check_bool "witness tight" true (C.num_colors f <= chi)
    | None -> Alcotest.fail "chi not achievable"
  done

let test_k_colorable_boundaries () =
  let g = Gen.ring 5 in
  check_bool "C5 not 2-colorable" true (C.k_colorable g 2 = None);
  check_bool "C5 3-colorable" true (C.k_colorable g 3 <> None);
  check_bool "k=0 on empty" true (C.k_colorable (G.empty 0) 0 <> None);
  check_bool "k=0 with vertices" true (C.k_colorable (G.empty 1) 0 = None)

let test_coloring_custom_order () =
  let g = Gen.star 5 in
  (* Color leaves first: all get 0, the center gets 1. *)
  let c = C.greedy ~order:[| 1; 2; 3; 4; 0 |] g in
  check "leaf color" 0 c.(1);
  check "center color" 1 c.(0);
  check_bool "proper" true (C.is_proper g c)

(* ------------------------------------------------------------------ *)
(* Dominating sets *)

module D = Ps_graph.Dominating

let test_dominating_verify () =
  let g = Gen.star 5 in
  let center = Ps_util.Bitset.of_list 5 [ 0 ] in
  check_bool "center dominates star" true (D.is_dominating g center);
  let leaf = Ps_util.Bitset.of_list 5 [ 1 ] in
  check_bool "leaf does not" false (D.is_dominating g leaf);
  check_bool "verify raises" true
    (try
       D.verify_exn g leaf;
       false
     with Invalid_argument _ -> true)

let test_dominating_greedy_valid () =
  let rng = Rng.create 31 in
  List.iter
    (fun g -> check_bool "greedy dominates" true
        (D.is_dominating g (D.greedy g)))
    [ Gen.ring 12; Gen.grid 4 5; Gen.gnp rng 70 0.08; G.empty 6;
      Gen.complete 9; Gen.star 15 ]

let test_dominating_known_numbers () =
  let gamma g = Option.get (D.domination_number_within ~budget:1_000_000 g) in
  check "star" 1 (gamma (Gen.star 8));
  check "complete" 1 (gamma (Gen.complete 7));
  check "empty" 5 (gamma (G.empty 5));
  check "P4" 2 (gamma (Gen.path 4));
  (* gamma(C_n) = ceil(n/3) *)
  check "C6" 2 (gamma (Gen.ring 6));
  check "C7" 3 (gamma (Gen.ring 7));
  check "C9" 3 (gamma (Gen.ring 9))

let test_dominating_exact_at_most_greedy () =
  let rng = Rng.create 32 in
  for _ = 1 to 8 do
    let g = Gen.gnp rng 18 0.15 in
    let exact = Option.get (D.domination_number_within ~budget:2_000_000 g) in
    check_bool "exact <= greedy" true
      (exact <= Ps_util.Bitset.cardinal (D.greedy g))
  done

let test_dominating_budget_gives_up () =
  let g = Gen.gnp (Rng.create 33) 30 0.1 in
  check_bool "tiny budget" true (D.minimum_within ~budget:1 g = None)

(* ------------------------------------------------------------------ *)
(* Matching *)

module M = Ps_graph.Matching

let test_matching_verify () =
  let g = Gen.path 4 in
  check_bool "valid maximal" true
    (M.is_maximal_matching g [| 1; 0; 3; 2 |]);
  check_bool "valid but not maximal" false
    (M.is_maximal_matching g [| -1; -1; 3; 2 |]);
  check_bool "still a matching" true (M.is_matching g [| -1; -1; 3; 2 |]);
  check_bool "broken involution" false (M.is_matching g [| 1; 2; 1; -1 |]);
  check_bool "non-edge pair" false
    (M.is_matching (Gen.path 4) [| 2; -1; 0; -1 |])

let test_matching_greedy () =
  let rng = Rng.create 61 in
  List.iter
    (fun g ->
      let m = M.greedy g in
      check_bool "maximal matching" true (M.is_maximal_matching g m))
    [ Gen.path 7; Gen.ring 8; Gen.complete 9; Gen.gnp rng 60 0.1;
      G.empty 5; Gen.star 10 ]

let test_matching_size_and_vertices () =
  let m = [| 1; 0; -1; 4; 3 |] in
  check "size" 2 (M.size m);
  Alcotest.(check (list int)) "matched" [ 0; 1; 3; 4 ] (M.matched_vertices m)

let test_matching_greedy_custom_order () =
  let g = Gen.path 4 in
  (* prefer the middle edge: leaves ends unmatched but still maximal *)
  let m = M.greedy ~order:[ (1, 2) ] g in
  check "partner of 1" 2 m.(1);
  check_bool "maximal" true (M.is_maximal_matching g m)

let test_matching_perfect_on_even_ring () =
  let g = Gen.ring 8 in
  check "perfect" 4 (M.size (M.greedy g))

(* ------------------------------------------------------------------ *)
(* I/O *)

let test_io_roundtrip () =
  let rng = Rng.create 21 in
  let g = Gen.gnp rng 40 0.15 in
  let g' = Gio.of_edge_list (Gio.to_edge_list g) in
  check_bool "roundtrip" true (G.equal g g')

let test_io_comments_and_blanks () =
  let text = "# a comment\n3 2\n\n0 1\n# another\n1 2\n" in
  let g = Gio.of_edge_list text in
  check "n" 3 (G.n_vertices g);
  check "m" 2 (G.n_edges g)

let test_io_bad_header () =
  Alcotest.check_raises "bad header"
    (Failure "Gio.of_edge_list: line 1: header must be \"n m\"") (fun () ->
      ignore (Gio.of_edge_list "3\n"))

let test_io_whitespace_tolerance () =
  (* tabs, runs of blanks and CRLF line endings all parse *)
  let g = Gio.of_edge_list "3\t2\r\n0  \t1\r\n 1\t 2 \r\n" in
  check "n" 3 (G.n_vertices g);
  check "m" 2 (G.n_edges g);
  check_bool "edge 0-1" true (G.has_edge g 0 1);
  check_bool "edge 1-2" true (G.has_edge g 1 2)

let test_io_rejects_out_of_range_vertex () =
  Alcotest.check_raises "id = n"
    (Failure "Gio.of_edge_list: line 2: vertex id 3 out of range [0, 3)")
    (fun () -> ignore (Gio.of_edge_list "3 1\n0 3\n"));
  Alcotest.check_raises "negative id"
    (Failure "Gio.of_edge_list: line 3: vertex id -1 out of range [0, 3)")
    (fun () -> ignore (Gio.of_edge_list "3 2\n0 1\n-1 2\n"));
  Alcotest.check_raises "negative vertex count"
    (Failure "Gio.of_edge_list: line 1: vertex count must be nonnegative")
    (fun () -> ignore (Gio.of_edge_list "-3 0\n"))

let test_io_edge_count_mismatch () =
  check_bool "mismatch raises" true
    (try
       ignore (Gio.of_edge_list "3 5\n0 1\n");
       false
     with Failure _ -> true)

let test_io_dot () =
  let dot = Gio.to_dot ~name:"t" (triangle ()) in
  check_bool "mentions graph" true
    (String.length dot > 10 && String.sub dot 0 7 = "graph t")

let test_io_file_roundtrip () =
  let g = Gen.grid 3 4 in
  let path = Filename.temp_file "pslocal" ".graph" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Gio.write_file path g;
      check_bool "file roundtrip" true (G.equal g (Gio.read_file path)))

(* ------------------------------------------------------------------ *)
(* Fast-path constructors *)

let test_of_sorted_edge_array () =
  let edges = [| (0, 1); (0, 2); (1, 2); (2, 3) |] in
  let fast = G.of_sorted_edge_array ~validate:true 4 edges in
  let slow = G.of_edges 4 (Array.to_list edges) in
  check_bool "equal to of_edges" true (G.equal fast slow)

let test_of_sorted_edge_array_rejects_unsorted () =
  check_bool "unsorted rejected" true
    (try
       ignore (G.of_sorted_edge_array ~validate:true 3 [| (1, 2); (0, 1) |]);
       false
     with Invalid_argument _ -> true);
  check_bool "reversed endpoint rejected" true
    (try
       ignore (G.of_sorted_edge_array ~validate:true 3 [| (1, 0) |]);
       false
     with Invalid_argument _ -> true);
  check_bool "duplicate rejected" true
    (try
       ignore (G.of_sorted_edge_array ~validate:true 3 [| (0, 1); (0, 1) |]);
       false
     with Invalid_argument _ -> true)

let test_of_csr () =
  (* path 0 - 1 - 2 as raw CSR *)
  let g =
    G.of_csr ~validate:true 3 ~offsets:[| 0; 1; 3; 4 |] ~adj:[| 1; 0; 2; 1 |]
  in
  check_bool "equal to of_edges" true
    (G.equal g (G.of_edges 3 [ (0, 1); (1, 2) ]))

let test_of_csr_rejects_invalid () =
  check_bool "asymmetric rejected" true
    (try
       ignore (G.of_csr ~validate:true 2 ~offsets:[| 0; 1; 1 |] ~adj:[| 1 |]);
       false
     with Invalid_argument _ -> true);
  check_bool "unsorted row rejected" true
    (try
       ignore
         (G.of_csr ~validate:true 3 ~offsets:[| 0; 2; 3; 4 |]
            ~adj:[| 2; 1; 0; 0 |]);
       false
     with Invalid_argument _ -> true);
  check_bool "bad offsets length rejected" true
    (try
       ignore (G.of_csr ~validate:true 2 ~offsets:[| 0; 0 |] ~adj:[||]);
       false
     with Invalid_argument _ -> true)

let test_of_csr_prefix () =
  (* Arena-backed view: arrays longer than their logical content; the
     spare tails (99 / 77 sentinels) must be invisible everywhere. *)
  let offsets = [| 0; 1; 3; 4; 99; 99 |] in
  let adj = [| 1; 0; 2; 1; 77; 77 |] in
  let g = G.of_csr_prefix ~validate:true 3 ~offsets ~adj in
  check "n" 3 (G.n_vertices g);
  check "m" 2 (G.n_edges g);
  check_bool "equal to exact-size graph" true
    (G.equal g (G.of_edges 3 [ (0, 1); (1, 2) ]));
  let o, a = G.to_csr g in
  check_bool "to_csr trims to logical content" true
    (o = [| 0; 1; 3; 4 |] && a = [| 1; 0; 2; 1 |]);
  check_bool "prefix shorter than n+1 rejected" true
    (try
       ignore (G.of_csr_prefix ~validate:true 3 ~offsets:[| 0; 1 |] ~adj);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* qcheck properties *)

let arbitrary_gnp =
  (* Generates (seed, n, p-as-percent) and builds a random graph. *)
  QCheck.make
    ~print:(fun (seed, n, p) -> Printf.sprintf "gnp seed=%d n=%d p=%d%%" seed n p)
    QCheck.Gen.(triple (int_bound 1000) (int_range 1 40) (int_bound 100))

let graph_of (seed, n, p) =
  Gen.gnp (Rng.create seed) n (float_of_int p /. 100.0)

let prop_handshake =
  QCheck.Test.make ~count:200 ~name:"handshake: sum of degrees = 2m"
    arbitrary_gnp (fun params ->
      let g = graph_of params in
      let sum = ref 0 in
      for v = 0 to G.n_vertices g - 1 do
        sum := !sum + G.degree g v
      done;
      !sum = 2 * G.n_edges g)

let prop_has_edge_matches_neighbors =
  QCheck.Test.make ~count:100 ~name:"has_edge agrees with neighbor lists"
    arbitrary_gnp (fun params ->
      let g = graph_of params in
      let ok = ref true in
      for u = 0 to G.n_vertices g - 1 do
        for v = 0 to G.n_vertices g - 1 do
          if u <> v then begin
            let listed = Array.mem v (G.neighbors g u) in
            if listed <> G.has_edge g u v then ok := false
          end
        done
      done;
      !ok)

let prop_bfs_triangle_inequality =
  QCheck.Test.make ~count:100
    ~name:"bfs distances satisfy edge-wise triangle inequality"
    arbitrary_gnp (fun params ->
      let g = graph_of params in
      if G.n_vertices g = 0 then true
      else begin
        let d = T.bfs_distances g 0 in
        let ok = ref true in
        G.iter_edges g (fun u v ->
            if d.(u) >= 0 && d.(v) >= 0 && abs (d.(u) - d.(v)) > 1 then
              ok := false);
        !ok
      end)

let prop_greedy_coloring_proper =
  QCheck.Test.make ~count:100 ~name:"greedy coloring always proper, ≤ Δ+1"
    arbitrary_gnp (fun params ->
      let g = graph_of params in
      let c = C.greedy g in
      C.is_proper g c && C.max_color c <= G.max_degree g)

let prop_components_partition =
  QCheck.Test.make ~count:100 ~name:"components partition the vertex set"
    arbitrary_gnp (fun params ->
      let g = graph_of params in
      let comps = T.connected_components g in
      let all = Array.to_list comps |> List.concat |> List.sort compare in
      all = List.init (G.n_vertices g) (fun i -> i))

let prop_io_roundtrip =
  QCheck.Test.make ~count:50 ~name:"edge-list IO roundtrip"
    arbitrary_gnp (fun params ->
      let g = graph_of params in
      G.equal g (Gio.of_edge_list (Gio.to_edge_list g)))

(* Re-render [text] with randomized token separators: runs of spaces and
   tabs between tokens, optional leading/trailing blanks, CRLF line
   endings. A parser that tokenizes on single ' ' only chokes on all of
   these. *)
let mangle_whitespace rng text =
  let buf = Buffer.create (String.length text * 2) in
  let sep () =
    for _ = 0 to Rng.int rng 3 do
      Buffer.add_char buf (if Rng.bernoulli rng 0.5 then '\t' else ' ')
    done
  in
  String.split_on_char '\n' text
  |> List.iter (fun line ->
         if line <> "" then begin
           if Rng.bernoulli rng 0.3 then sep ();
           List.iteri
             (fun i tok ->
               if i > 0 then sep ();
               Buffer.add_string buf tok)
             (String.split_on_char ' ' line);
           if Rng.bernoulli rng 0.3 then sep ();
           if Rng.bernoulli rng 0.5 then Buffer.add_char buf '\r';
           Buffer.add_char buf '\n'
         end);
  Buffer.contents buf

let prop_io_roundtrip_whitespace =
  QCheck.Test.make ~count:50
    ~name:"edge-list IO roundtrip under randomized whitespace"
    arbitrary_gnp (fun params ->
      let seed, _, _ = params in
      let g = graph_of params in
      let text = mangle_whitespace (Rng.create (seed + 1)) (Gio.to_edge_list g) in
      G.equal g (Gio.of_edge_list text))

let prop_sorted_edge_array_fast_path =
  QCheck.Test.make ~count:100
    ~name:"of_sorted_edge_array (validated) = of_edges on sorted edges"
    arbitrary_gnp (fun params ->
      let g = graph_of params in
      (* [G.edges] returns each edge once, u < v, lexicographic. *)
      let edges = Array.of_list (G.edges g) in
      G.equal g
        (G.of_sorted_edge_array ~validate:true (G.n_vertices g) edges))

let props =
  List.map QCheck_alcotest.to_alcotest
    [ prop_handshake;
      prop_has_edge_matches_neighbors;
      prop_bfs_triangle_inequality;
      prop_greedy_coloring_proper;
      prop_components_partition;
      prop_io_roundtrip;
      prop_io_roundtrip_whitespace;
      prop_sorted_edge_array_fast_path ]

let suites =
  [ ( "graph.core",
      [ Alcotest.test_case "basic" `Quick test_graph_basic;
        Alcotest.test_case "duplicates collapse" `Quick
          test_graph_duplicate_edges_collapse;
        Alcotest.test_case "rejects self-loop" `Quick
          test_graph_rejects_self_loop;
        Alcotest.test_case "rejects out of range" `Quick
          test_graph_rejects_out_of_range;
        Alcotest.test_case "neighbors sorted" `Quick
          test_graph_neighbors_sorted;
        Alcotest.test_case "empty graph" `Quick test_graph_empty;
        Alcotest.test_case "zero vertices" `Quick test_graph_zero_vertices;
        Alcotest.test_case "edges iteration" `Quick
          test_graph_edges_iteration;
        Alcotest.test_case "fold/exists" `Quick test_graph_fold_exists;
        Alcotest.test_case "induced subgraph" `Quick test_induced_subgraph;
        Alcotest.test_case "induced relabeling" `Quick
          test_induced_subgraph_relabeling;
        Alcotest.test_case "complement" `Quick test_complement;
        Alcotest.test_case "union" `Quick test_union;
        Alcotest.test_case "degree stats" `Quick test_avg_max_degree;
        Alcotest.test_case "of_sorted_edge_array" `Quick
          test_of_sorted_edge_array;
        Alcotest.test_case "of_sorted_edge_array rejects" `Quick
          test_of_sorted_edge_array_rejects_unsorted;
        Alcotest.test_case "of_csr" `Quick test_of_csr;
        Alcotest.test_case "of_csr rejects" `Quick
          test_of_csr_rejects_invalid;
        Alcotest.test_case "of_csr_prefix" `Quick test_of_csr_prefix ] );
    ( "graph.gen",
      [ Alcotest.test_case "ring" `Quick test_gen_ring;
        Alcotest.test_case "path" `Quick test_gen_path;
        Alcotest.test_case "complete" `Quick test_gen_complete;
        Alcotest.test_case "complete bipartite" `Quick
          test_gen_complete_bipartite;
        Alcotest.test_case "grid" `Quick test_gen_grid;
        Alcotest.test_case "balanced tree" `Quick test_gen_balanced_tree;
        Alcotest.test_case "gnp extremes" `Quick test_gen_gnp_extremes;
        Alcotest.test_case "gnp density" `Quick test_gen_gnp_density;
        Alcotest.test_case "gnm" `Quick test_gen_gnm;
        Alcotest.test_case "random regular-ish" `Quick
          test_gen_random_regular_ish;
        Alcotest.test_case "random tree" `Quick test_gen_random_tree;
        Alcotest.test_case "unit interval" `Quick test_gen_unit_interval;
        Alcotest.test_case "power law" `Quick test_gen_power_law;
        Alcotest.test_case "hypercube" `Quick test_gen_hypercube;
        Alcotest.test_case "petersen invariants" `Quick
          test_gen_petersen_invariants;
        Alcotest.test_case "kneser" `Quick test_gen_kneser;
        Alcotest.test_case "crown" `Quick test_gen_crown;
        Alcotest.test_case "wheel" `Quick test_gen_wheel;
        Alcotest.test_case "disjoint cliques" `Quick
          test_gen_disjoint_cliques ] );
    ( "graph.traverse",
      [ Alcotest.test_case "bfs distances" `Quick test_bfs_distances;
        Alcotest.test_case "bfs unreachable" `Quick test_bfs_unreachable;
        Alcotest.test_case "bfs multi-source" `Quick test_bfs_multi;
        Alcotest.test_case "ball" `Quick test_ball;
        Alcotest.test_case "ball subgraph" `Quick test_ball_subgraph;
        Alcotest.test_case "components" `Quick test_components;
        Alcotest.test_case "eccentricity/diameter" `Quick
          test_eccentricity_diameter;
        Alcotest.test_case "diameter disconnected" `Quick
          test_diameter_disconnected;
        Alcotest.test_case "dfs preorder" `Quick test_dfs_preorder;
        Alcotest.test_case "distance" `Quick test_distance;
        Alcotest.test_case "power graph" `Quick test_power_graph ] );
    ( "graph.coloring",
      [ Alcotest.test_case "greedy proper" `Quick
          test_coloring_greedy_proper;
        Alcotest.test_case "path two colors" `Quick
          test_coloring_greedy_path_two_colors;
        Alcotest.test_case "partial" `Quick test_coloring_partial;
        Alcotest.test_case "classes" `Quick test_coloring_classes;
        Alcotest.test_case "chromatic known" `Quick
          test_chromatic_known_values;
        Alcotest.test_case "chromatic vs greedy" `Quick
          test_chromatic_vs_greedy;
        Alcotest.test_case "k-colorable boundaries" `Quick
          test_k_colorable_boundaries;
        Alcotest.test_case "custom order" `Quick test_coloring_custom_order ]
    );
    ( "graph.dominating",
      [ Alcotest.test_case "verify" `Quick test_dominating_verify;
        Alcotest.test_case "greedy valid" `Quick
          test_dominating_greedy_valid;
        Alcotest.test_case "known numbers" `Quick
          test_dominating_known_numbers;
        Alcotest.test_case "exact <= greedy" `Quick
          test_dominating_exact_at_most_greedy;
        Alcotest.test_case "budget" `Quick test_dominating_budget_gives_up ]
    );
    ( "graph.matching",
      [ Alcotest.test_case "verify" `Quick test_matching_verify;
        Alcotest.test_case "greedy" `Quick test_matching_greedy;
        Alcotest.test_case "size/vertices" `Quick
          test_matching_size_and_vertices;
        Alcotest.test_case "custom order" `Quick
          test_matching_greedy_custom_order;
        Alcotest.test_case "perfect on even ring" `Quick
          test_matching_perfect_on_even_ring ] );
    ( "graph.io",
      [ Alcotest.test_case "roundtrip" `Quick test_io_roundtrip;
        Alcotest.test_case "comments and blanks" `Quick
          test_io_comments_and_blanks;
        Alcotest.test_case "bad header" `Quick test_io_bad_header;
        Alcotest.test_case "whitespace tolerance" `Quick
          test_io_whitespace_tolerance;
        Alcotest.test_case "out-of-range vertex" `Quick
          test_io_rejects_out_of_range_vertex;
        Alcotest.test_case "edge count mismatch" `Quick
          test_io_edge_count_mismatch;
        Alcotest.test_case "dot export" `Quick test_io_dot;
        Alcotest.test_case "file roundtrip" `Quick test_io_file_roundtrip ]
    );
    ("graph.properties", props) ]
