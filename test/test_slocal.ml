(* Tests for the SLOCAL simulator, its greedy algorithms, network
   decomposition and derandomization. *)

module G = Ps_graph.Graph
module Gen = Ps_graph.Gen
module Slocal = Ps_slocal.Slocal
module Gmis = Ps_slocal.Greedy_mis
module Gcol = Ps_slocal.Greedy_coloring
module Decomp = Ps_slocal.Decomposition
module Derand = Ps_slocal.Derandomize
module Is = Ps_maxis.Independent_set
module Rng = Ps_util.Rng

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Simulator mechanics *)

(* Locality-0 algorithm: output = number of previously processed nodes
   visible in the view (always 0 or 1 = itself-only ball). *)
module Self_only = struct
  type state = int
  type output = int

  let name = "self-only"
  let locality = 0

  let process (view : int Slocal.node_view) =
    G.n_vertices view.graph

  let output s = s
end

(* Locality-2 algorithm: output the ball size — checks the simulator hands
   out exactly the r-ball. *)
module Ball_size = struct
  type state = int
  type output = int

  let name = "ball-size"
  let locality = 2

  let process (view : int Slocal.node_view) = G.n_vertices view.graph
  let output s = s
end

(* Records the number of already-processed nodes in the 1-ball; summed
   over all nodes this counts each edge at most... used to check state
   visibility ordering. *)
module Seen_processed = struct
  type state = int
  type output = int

  let name = "seen-processed"
  let locality = 1

  let process (view : int Slocal.node_view) =
    let seen = ref 0 in
    Array.iteri
      (fun i st -> if i <> view.center && st <> None then incr seen)
      view.states;
    !seen

  let output s = s
end

let test_slocal_locality_zero_view () =
  let module R = Slocal.Run (Self_only) in
  let outputs, stats = R.run (Gen.ring 6) in
  Array.iter (fun b -> check "ball is singleton" 1 b) outputs;
  check "locality" 0 stats.Slocal.locality;
  check "processed" 6 stats.Slocal.processed;
  check "max ball" 1 stats.Slocal.max_ball_vertices

let test_slocal_ball_exposure () =
  let module R = Slocal.Run (Ball_size) in
  let outputs, stats = R.run (Gen.ring 10) in
  Array.iter (fun b -> check "2-ball on ring has 5" 5 b) outputs;
  check "max ball" 5 stats.Slocal.max_ball_vertices

let test_slocal_order_respected () =
  let module R = Slocal.Run (Seen_processed) in
  let g = Gen.path 3 in
  (* Process 1 first: it sees nothing; 0 and 2 then each see node 1. *)
  let outputs, _ = R.run ~order:[| 1; 0; 2 |] g in
  Alcotest.(check (array int)) "visibility" [| 1; 0; 1 |] outputs

let test_slocal_bad_order_rejected () =
  let module R = Slocal.Run (Self_only) in
  Alcotest.check_raises "not a permutation" (Invalid_argument
    "Slocal.run: order is not a permutation") (fun () ->
      ignore (R.run ~order:[| 0; 0; 2 |] (Gen.path 3)))

let test_slocal_order_length_rejected () =
  let module R = Slocal.Run (Self_only) in
  Alcotest.check_raises "length" (Invalid_argument
    "Slocal.run: order length mismatch") (fun () ->
      ignore (R.run ~order:[| 0; 1 |] (Gen.path 3)))

(* ------------------------------------------------------------------ *)
(* Greedy MIS (locality 1) *)

let test_greedy_mis_valid () =
  let rng = Rng.create 1 in
  List.iter
    (fun g ->
      let flags, stats = Gmis.run g in
      let is = Is.of_indicator flags in
      check_bool "independent" true (Is.is_independent g is);
      check_bool "maximal" true (Is.is_maximal g is);
      check "locality one" 1 stats.Slocal.locality)
    [ Gen.ring 9; Gen.complete 6; Gen.grid 4 4; Gen.gnp rng 80 0.1;
      G.empty 5 ]

let test_greedy_mis_every_order_valid () =
  let g = Gen.gnp (Rng.create 2) 30 0.2 in
  let rng = Rng.create 3 in
  for _ = 1 to 25 do
    let flags, _ = Gmis.run_random_order ~rng g in
    let is = Is.of_indicator flags in
    check_bool "independent" true (Is.is_independent g is);
    check_bool "maximal" true (Is.is_maximal g is)
  done

let test_greedy_mis_first_node_always_joins () =
  let g = Gen.complete 5 in
  let flags, _ = Gmis.run ~order:[| 3; 0; 1; 2; 4 |] g in
  check_bool "first in" true flags.(3);
  check "only one in clique" 1
    (Array.fold_left (fun a b -> if b then a + 1 else a) 0 flags)

let test_greedy_mis_identity_order_path () =
  (* Path 0-1-2-3: order 0..3 gives {0, 2} (3 blocked by 2). *)
  let flags, _ = Gmis.run (Gen.path 4) in
  Alcotest.(check (array bool)) "greedy path"
    [| true; false; true; false |] flags

(* ------------------------------------------------------------------ *)
(* Greedy coloring (locality 1) *)

let test_greedy_coloring_valid () =
  let rng = Rng.create 4 in
  List.iter
    (fun g ->
      let colors, _ = Gcol.run g in
      check_bool "proper" true (Ps_graph.Coloring.is_proper g colors);
      check_bool "Δ+1" true
        (Ps_graph.Coloring.max_color colors <= G.max_degree g))
    [ Gen.ring 7; Gen.complete 6; Gen.gnp rng 60 0.15; Gen.star 9 ]

let test_greedy_coloring_every_order_valid () =
  let g = Gen.gnp (Rng.create 5) 25 0.25 in
  let rng = Rng.create 6 in
  for _ = 1 to 25 do
    let colors, _ = Gcol.run_random_order ~rng g in
    check_bool "proper" true (Ps_graph.Coloring.is_proper g colors)
  done

let test_greedy_coloring_matches_sequential () =
  (* With the identity order the SLOCAL run must equal the sequential
     greedy coloring — same algorithm, two harnesses. *)
  let g = Gen.gnp (Rng.create 7) 40 0.15 in
  let slocal_colors, _ = Gcol.run g in
  let sequential = Ps_graph.Coloring.greedy g in
  Alcotest.(check (array int)) "same coloring" sequential slocal_colors

(* ------------------------------------------------------------------ *)
(* Network decomposition *)

let test_decomposition_valid_on_families () =
  let rng = Rng.create 8 in
  List.iter
    (fun g ->
      let d = Decomp.ball_carving g in
      let chk = Decomp.verify g d in
      check_bool
        (Format.asprintf "decomposition valid (%a)" Decomp.pp_check chk)
        true (Decomp.check_all chk))
    [ Gen.ring 20;
      Gen.grid 6 6;
      Gen.complete 10;
      Gen.gnp rng 150 0.03;
      Gen.gnp rng 150 0.2;
      G.empty 12;
      Gen.star 15;
      Gen.random_tree rng 60 ]

let test_decomposition_clique_one_cluster () =
  let d = Decomp.ball_carving (Gen.complete 16) in
  check "one cluster" 1 d.Decomp.n_clusters;
  check "one color" 1 d.Decomp.n_colors;
  check "radius 1" 1 d.Decomp.max_radius

let test_decomposition_empty_graph_singletons () =
  let d = Decomp.ball_carving (G.empty 5) in
  check "clusters" 5 d.Decomp.n_clusters;
  check "colors" 1 d.Decomp.n_colors;
  check "radius 0" 0 d.Decomp.max_radius

let test_decomposition_covers_all () =
  let g = Gen.gnp (Rng.create 9) 100 0.05 in
  let d = Decomp.ball_carving g in
  Array.iter
    (fun c -> check_bool "assigned" true (c >= 0 && c < d.Decomp.n_clusters))
    d.Decomp.cluster_of

let test_decomposition_custom_order () =
  let g = Gen.path 8 in
  let d = Decomp.ball_carving ~order:[| 7; 6; 5; 4; 3; 2; 1; 0 |] g in
  check_bool "valid under any order" true
    (Decomp.check_all (Decomp.verify g d))

(* ------------------------------------------------------------------ *)
(* Derandomization *)

let test_derandomized_mis () =
  let rng = Rng.create 10 in
  List.iter
    (fun g ->
      let r = Derand.mis g in
      let is = Is.of_indicator r.Derand.outputs in
      check_bool "independent" true (Is.is_independent g is);
      check_bool "maximal" true (Is.is_maximal g is);
      check_bool "round budget O(c·d)" true
        (r.Derand.simulated_rounds
        <= r.Derand.decomposition.Decomp.n_colors
           * (2 * (r.Derand.decomposition.Decomp.max_radius + 2))))
    [ Gen.ring 16; Gen.grid 5 5; Gen.gnp rng 120 0.05; Gen.complete 9 ]

let test_derandomized_coloring () =
  let rng = Rng.create 11 in
  List.iter
    (fun g ->
      let r = Derand.coloring g in
      check_bool "proper" true
        (Ps_graph.Coloring.is_proper g r.Derand.outputs);
      check_bool "Δ+1" true
        (Ps_graph.Coloring.max_color r.Derand.outputs <= G.max_degree g))
    [ Gen.ring 16; Gen.grid 5 5; Gen.gnp rng 100 0.08 ]

let test_derandomized_reuses_decomposition () =
  let g = Gen.grid 4 4 in
  let d = Decomp.ball_carving g in
  let r = Derand.mis ~decomposition:d g in
  check "same cluster count" d.Decomp.n_clusters
    r.Derand.decomposition.Decomp.n_clusters

(* ------------------------------------------------------------------ *)
(* SLOCAL MaxIS approximation (containment direction of Theorem 1.1) *)

module Mx = Ps_slocal.Maxis_approx

let test_maxis_approx_valid () =
  let rng = Rng.create 20 in
  List.iter
    (fun g ->
      let r = Mx.run g in
      check_bool "independent+maximal" true
        (Is.is_independent g r.Mx.set && Is.is_maximal g r.Mx.set);
      check_bool "ratio bound >= 1" true (r.Mx.ratio_bound >= 1);
      check_bool "locality positive" true (r.Mx.locality >= 1))
    [ Gen.ring 20; Gen.grid 6 6; Gen.gnp rng 100 0.05; Gen.complete 12;
      G.empty 8; Gen.star 14 ]

let test_maxis_approx_ratio_certified () =
  (* On graphs small enough for exact alpha, the set must be at least
     alpha / ratio_bound when every cluster was solved exactly. *)
  let rng = Rng.create 21 in
  for _ = 1 to 8 do
    let g = Gen.gnp rng 30 0.15 in
    let r = Mx.run g in
    if r.Mx.per_cluster_exact then begin
      let alpha = Ps_maxis.Exact.independence_number g in
      check_bool "alpha/c guarantee" true
        (Is.size r.Mx.set * r.Mx.ratio_bound >= alpha)
    end
  done

let test_maxis_approx_single_cluster_is_exact () =
  (* A clique decomposes into one cluster with one color: the answer is
     exactly alpha = 1. *)
  let g = Gen.complete 10 in
  let r = Mx.run g in
  check "exact on clique" 1 (Is.size r.Mx.set);
  check "one color" 1 r.Mx.ratio_bound

let test_maxis_approx_budget_fallback () =
  (* With a 1-node budget every cluster falls back to greedy; the result
     must still be a valid maximal IS, only the certificate weakens. *)
  let g = Gen.gnp (Rng.create 22) 60 0.1 in
  let r = Mx.run ~exact_budget:1 g in
  check_bool "fallback flagged" false r.Mx.per_cluster_exact;
  check_bool "still valid" true
    (Is.is_independent g r.Mx.set && Is.is_maximal g r.Mx.set)

let test_maxis_approx_locality_matches_decomposition () =
  let g = Gen.gnp (Rng.create 23) 80 0.05 in
  let d = Ps_slocal.Decomposition.ball_carving g in
  let r = Mx.run ~decomposition:d g in
  check "locality = radius+1" (d.Decomp.max_radius + 1) r.Mx.locality;
  check "ratio = colors" d.Decomp.n_colors r.Mx.ratio_bound

(* ------------------------------------------------------------------ *)
(* SLOCAL dominating set *)

module Gd = Ps_slocal.Greedy_dominating

let test_dominating_valid_all_orders () =
  let g = Gen.gnp (Rng.create 24) 40 0.1 in
  let rng = Rng.create 25 in
  for _ = 1 to 20 do
    let flags, _ = Gd.run_random_order ~rng g in
    let set = Is.of_indicator flags in
    check_bool "dominates" true (Ps_graph.Dominating.is_dominating g set);
    (* the greedy joiners form an independent set: it is an MIS *)
    check_bool "independent" true (Is.is_independent g set);
    check_bool "maximal" true (Is.is_maximal g set)
  done

let test_dominating_families () =
  let rng = Rng.create 26 in
  List.iter
    (fun g ->
      let flags, stats = Gd.run g in
      check_bool "dominates" true
        (Ps_graph.Dominating.is_dominating g (Is.of_indicator flags));
      check "locality one" 1 stats.Slocal.locality)
    [ Gen.ring 12; Gen.complete 8; Gen.star 9; G.empty 5;
      Gen.gnp rng 60 0.08 ]

(* ------------------------------------------------------------------ *)
(* Order sensitivity: the crown graph and the adversarial order search *)

module Os = Ps_slocal.Order_search

let test_crown_good_order_two_colors () =
  let n = 6 in
  let g = Gen.crown n in
  (* all left, then all right *)
  let order = Array.init (2 * n) (fun i -> i) in
  let colors, _ = Ps_slocal.Greedy_coloring.run ~order g in
  check "two colors" 2 (Ps_graph.Coloring.num_colors colors)

let test_crown_paired_order_n_colors () =
  let n = 6 in
  let g = Gen.crown n in
  (* 0, n, 1, n+1, ... : each pair is nonadjacent and mirrors colors *)
  let order =
    Array.init (2 * n) (fun i -> if i mod 2 = 0 then i / 2 else n + (i / 2))
  in
  let colors, _ = Ps_slocal.Greedy_coloring.run ~order g in
  check "n colors" n (Ps_graph.Coloring.num_colors colors)

let test_order_search_finds_bad_coloring () =
  let g = Gen.crown 5 in
  let rng = Rng.create 111 in
  let _, worst = Os.worst_coloring_order ~rng ~restarts:8 ~steps:300 g in
  (* chi = 2; the adversary must find something strictly worse *)
  check_bool "worse than optimal" true (worst >= 3)

let test_order_search_mis_star () =
  (* on a star the adversary forces the singleton {center} *)
  let g = Gen.star 10 in
  let rng = Rng.create 112 in
  let _, worst = Os.worst_mis_order ~rng ~restarts:6 ~steps:200 g in
  check "center-only MIS" 1 worst

let test_order_search_result_is_achievable () =
  let g = Gen.gnp (Rng.create 113) 30 0.15 in
  let rng = Rng.create 114 in
  let order, colors = Os.worst_coloring_order ~rng ~restarts:3 ~steps:100 g in
  let replay, _ = Ps_slocal.Greedy_coloring.run ~order g in
  check "replayable" colors (Ps_graph.Coloring.num_colors replay)

(* ------------------------------------------------------------------ *)
(* MPX randomized decomposition *)

module Mpx = Ps_slocal.Mpx

let test_mpx_valid () =
  let rng = Rng.create 101 in
  List.iter
    (fun g ->
      let d = Mpx.decompose rng ~beta:0.3 g in
      check_bool "valid" true (Mpx.is_valid g d))
    [ Gen.ring 30; Gen.grid 7 7; Gen.gnp rng 120 0.04; G.empty 8;
      Gen.complete 10; Gen.random_tree rng 50 ]

let test_mpx_beta_tradeoff () =
  (* larger beta => more, smaller clusters and more cut edges *)
  let g = Gen.grid 12 12 in
  let small = Mpx.decompose (Rng.create 102) ~beta:0.05 g in
  let large = Mpx.decompose (Rng.create 102) ~beta:2.0 g in
  check_bool "more clusters at high beta" true
    (large.Mpx.n_clusters > small.Mpx.n_clusters);
  check_bool "smaller radius at high beta" true
    (Mpx.max_radius large <= Mpx.max_radius small)

let test_mpx_cut_fraction () =
  (* E[cut] <= ~beta m; average over seeds with generous slack *)
  let g = Gen.grid 10 10 in
  let beta = 0.2 in
  let total = ref 0 in
  for seed = 1 to 10 do
    total := !total + Mpx.cut_edges g (Mpx.decompose (Rng.create seed) ~beta g)
  done;
  let mean = float_of_int !total /. 10.0 in
  check_bool "cut fraction bounded" true
    (mean <= 3.0 *. beta *. float_of_int (G.n_edges g))

let test_mpx_to_decomposition_structural () =
  let rng = Rng.create 103 in
  let g = Gen.gnp rng 80 0.06 in
  let d = Mpx.to_decomposition g (Mpx.decompose rng ~beta:0.4 g) in
  let chk = Decomp.verify g d in
  check_bool "partition" true chk.Decomp.is_partition;
  check_bool "connected" true chk.Decomp.clusters_connected;
  check_bool "radius bookkeeping" true chk.Decomp.radius_ok;
  check_bool "colors legal" true chk.Decomp.colors_legal

let test_mpx_feeds_derandomization () =
  (* the randomized decomposition plugs into the same machinery *)
  let rng = Rng.create 104 in
  let g = Gen.gnp rng 70 0.07 in
  let d = Mpx.to_decomposition g (Mpx.decompose rng ~beta:0.5 g) in
  let r = Derand.mis ~decomposition:d g in
  let is = Is.of_indicator r.Derand.outputs in
  check_bool "valid MIS" true (Is.is_independent g is && Is.is_maximal g is)

let test_graph_contract () =
  let g = Gen.path 6 in
  let q = G.contract g [| 0; 0; 1; 1; 2; 2 |] in
  check "quotient n" 3 (G.n_vertices q);
  check "quotient m" 2 (G.n_edges q);
  check_bool "0-1" true (G.has_edge q 0 1);
  check_bool "1-2" true (G.has_edge q 1 2);
  check_bool "0-2" false (G.has_edge q 0 2)

(* ------------------------------------------------------------------ *)
(* The generic SLOCAL -> LOCAL compiler *)

module Compiler = Ps_slocal.Compiler

let test_compiler_sweep_order_is_permutation () =
  let g = Gen.gnp (Rng.create 91) 60 0.08 in
  let d = Decomp.ball_carving g in
  let order = Compiler.sweep_order d in
  let sorted = Array.copy order in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation"
    (Array.init (G.n_vertices g) (fun i -> i))
    sorted

let test_compiler_sweep_respects_colors () =
  let g = Gen.gnp (Rng.create 92) 60 0.08 in
  let d = Decomp.ball_carving g in
  let order = Compiler.sweep_order d in
  let last_color = ref (-1) in
  Array.iter
    (fun v ->
      let color = d.Decomp.color_of.(d.Decomp.cluster_of.(v)) in
      check_bool "colors nondecreasing" true (color >= !last_color);
      last_color := color)
    order

let test_compiler_mis () =
  let rng = Rng.create 93 in
  List.iter
    (fun g ->
      let module C = Compiler.Make (Ps_slocal.Greedy_mis.Algo) in
      let r = C.run g in
      let is = Is.of_indicator r.Compiler.outputs in
      check_bool "valid MIS" true
        (Is.is_independent g is && Is.is_maximal g is);
      check "round formula"
        (Compiler.simulated_rounds r.Compiler.decomposition ~locality:1)
        r.Compiler.simulated_rounds)
    [ Gen.ring 15; Gen.grid 5 5; Gen.gnp rng 80 0.06; Gen.complete 8 ]

let test_compiler_coloring () =
  let g = Gen.gnp (Rng.create 94) 70 0.08 in
  let module C = Compiler.Make (Ps_slocal.Greedy_coloring.Algo) in
  let r = C.run g in
  check_bool "proper" true (Ps_graph.Coloring.is_proper g r.Compiler.outputs);
  check_bool "Δ+1" true
    (Ps_graph.Coloring.max_color r.Compiler.outputs <= G.max_degree g)

let test_compiler_dominating () =
  let g = Gen.gnp (Rng.create 95) 60 0.1 in
  let module C = Compiler.Make (Ps_slocal.Greedy_dominating.Algo) in
  let r = C.run g in
  check_bool "dominates" true
    (Ps_graph.Dominating.is_dominating g
       (Is.of_indicator r.Compiler.outputs))

let test_compiler_matches_slocal_run_with_same_order () =
  (* The compiler IS an SLOCAL execution with the sweep order: outputs
     must coincide exactly. *)
  let g = Gen.gnp (Rng.create 96) 50 0.1 in
  let d = Decomp.ball_carving g in
  let order = Compiler.sweep_order d in
  let module C = Compiler.Make (Ps_slocal.Greedy_mis.Algo) in
  let r = C.run ~decomposition:d g in
  let direct, _ = Ps_slocal.Greedy_mis.run ~order g in
  Alcotest.(check (array bool)) "identical" direct r.Compiler.outputs

let test_compiler_matching_locality_two () =
  (* locality 2: the compiler must decompose G^2 so parallel clusters
     cannot race on shared edges *)
  let rng = Rng.create 97 in
  List.iter
    (fun g ->
      let module C = Compiler.Make (Ps_slocal.Greedy_matching.Algo) in
      let r = C.run g in
      let partner =
        Array.map
          (function
            | Ps_slocal.Greedy_matching.Algo.Matched_with id -> id
            | Ps_slocal.Greedy_matching.Algo.Single ->
                Ps_graph.Matching.unmatched)
          r.Compiler.outputs
      in
      check_bool "maximal matching" true
        (Ps_graph.Matching.is_maximal_matching g partner))
    [ Gen.ring 12; Gen.gnp rng 50 0.1; Gen.grid 4 5 ]

let test_compiler_round_bound_polylog () =
  (* On bounded-growth inputs the charged rounds stay around
     c·2(d+r+1) = O(log^2 n). *)
  let g = Gen.grid 20 20 in
  let module C = Compiler.Make (Ps_slocal.Greedy_mis.Algo) in
  let r = C.run g in
  check_bool "small" true (r.Compiler.simulated_rounds <= 80)

(* ------------------------------------------------------------------ *)
(* SLOCAL greedy matching (locality 2) *)

module Gm = Ps_slocal.Greedy_matching
module M = Ps_graph.Matching

let test_matching_slocal_valid () =
  let rng = Rng.create 71 in
  List.iter
    (fun g ->
      let partner, stats = Gm.run g in
      check_bool "maximal matching" true (M.is_maximal_matching g partner);
      check "locality two" 2 stats.Slocal.locality)
    [ Gen.ring 9; Gen.complete 8; Gen.grid 4 4; Gen.gnp rng 60 0.1;
      G.empty 5; Gen.star 10; Gen.path 2 ]

let test_matching_slocal_every_order () =
  let g = Gen.gnp (Rng.create 72) 30 0.2 in
  let rng = Rng.create 73 in
  for _ = 1 to 25 do
    let partner, _ = Gm.run_random_order ~rng g in
    check_bool "maximal matching" true (M.is_maximal_matching g partner)
  done

let test_matching_slocal_path_identity_order () =
  (* path 0-1-2-3, identity order: 0 claims 1; 1 honors; 2 claims 3. *)
  let partner, _ = Gm.run (Gen.path 4) in
  Alcotest.(check (array int)) "pairs" [| 1; 0; 3; 2 |] partner

(* ------------------------------------------------------------------ *)
(* Weak splitting *)

module Sp = Ps_slocal.Splitting

let test_splitting_verifier () =
  (* K4: threshold 3 constrains every vertex. *)
  let g = Gen.complete 4 in
  check_bool "balanced ok" true
    (Sp.is_weak_splitting g ~threshold:3 [| true; true; false; false |]);
  check_bool "monochromatic fails" false
    (Sp.is_weak_splitting g ~threshold:3 [| true; true; true; true |]);
  Alcotest.(check (list int)) "everyone fails" [ 0; 1; 2; 3 ]
    (Sp.monochromatic_failures g ~threshold:3 [| true; true; true; true |])

let test_splitting_threshold_excuses_low_degree () =
  let g = Gen.star 5 in
  (* leaves have degree 1 < threshold: only the center is constrained *)
  let colors = [| true; true; false; true; true |] in
  check_bool "center sees both" true (Sp.is_weak_splitting g ~threshold:2 colors);
  check_bool "all-red center fails" false
    (Sp.is_weak_splitting g ~threshold:2 [| false; true; true; true; true |])

let test_splitting_initial_potential () =
  let g = Gen.complete 5 in
  (* every vertex: degree 4, term 2*2^-4 = 1/8; five vertices = 5/8 *)
  Alcotest.(check (float 1e-9)) "potential" 0.625
    (Sp.initial_potential g ~threshold:3)

let test_splitting_deterministic_succeeds_when_certified () =
  let rng = Rng.create 61 in
  for _ = 1 to 10 do
    (* dense random graph: min degree well above log2 n + 1 *)
    let g = Gen.gnp rng 60 0.5 in
    let threshold = 12 in
    if Sp.initial_potential g ~threshold < 1.0 then begin
      let colors = Sp.deterministic g ~threshold in
      check_bool "no failures" true (Sp.is_weak_splitting g ~threshold colors)
    end
  done

let test_splitting_deterministic_any_order () =
  let g = Gen.gnp (Rng.create 62) 50 0.5 in
  let threshold = 12 in
  let rng = Rng.create 63 in
  if Sp.initial_potential g ~threshold < 1.0 then
    for _ = 1 to 10 do
      let order = Rng.permutation rng (G.n_vertices g) in
      let colors = Sp.deterministic ~order g ~threshold in
      check_bool "no failures any order" true
        (Sp.is_weak_splitting g ~threshold colors)
    done

let test_splitting_randomized_usually_works_when_dense () =
  let g = Gen.complete_bipartite 20 20 in
  let rng = Rng.create 64 in
  let successes = ref 0 in
  for _ = 1 to 20 do
    if Sp.is_weak_splitting g ~threshold:15 (Sp.randomized rng g) then
      incr successes
  done;
  (* failure prob per vertex 2^-19; 40 vertices; ~always works *)
  check_bool "random splitting whp" true (!successes >= 19)

let test_splitting_failure_count_bounded_by_potential () =
  (* Even when the certificate is above 1 the conditional-expectations
     argument bounds failures by the initial potential. *)
  let rng = Rng.create 65 in
  for _ = 1 to 10 do
    let g = Gen.gnp rng 40 0.2 in
    let threshold = 4 in
    let colors = Sp.deterministic g ~threshold in
    let failures =
      List.length (Sp.monochromatic_failures g ~threshold colors)
    in
    check_bool "failures <= potential" true
      (float_of_int failures
      <= Sp.initial_potential g ~threshold +. 1e-9)
  done

(* ------------------------------------------------------------------ *)
(* qcheck properties *)

let arbitrary_gnp =
  QCheck.make
    ~print:(fun (seed, n, p) -> Printf.sprintf "seed=%d n=%d p=%d%%" seed n p)
    QCheck.Gen.(triple (int_bound 500) (int_range 1 35) (int_bound 60))

let graph_of (seed, n, p) =
  Gen.gnp (Rng.create seed) n (float_of_int p /. 100.0)

let prop_greedy_mis_any_order =
  QCheck.Test.make ~count:80
    ~name:"SLOCAL greedy MIS is maximal+independent for random orders"
    arbitrary_gnp (fun params ->
      let g = graph_of params in
      let rng = Rng.create (Hashtbl.hash params) in
      let flags, _ = Gmis.run_random_order ~rng g in
      let is = Is.of_indicator flags in
      Is.is_independent g is && Is.is_maximal g is)

let prop_greedy_coloring_any_order =
  QCheck.Test.make ~count:80
    ~name:"SLOCAL greedy coloring proper for random orders" arbitrary_gnp
    (fun params ->
      let g = graph_of params in
      let rng = Rng.create (Hashtbl.hash params) in
      let colors, _ = Gcol.run_random_order ~rng g in
      Ps_graph.Coloring.is_proper g colors
      && Ps_graph.Coloring.max_color colors <= G.max_degree g)

let prop_decomposition_valid =
  QCheck.Test.make ~count:60
    ~name:"ball carving yields a valid (log n, log n) decomposition"
    arbitrary_gnp (fun params ->
      let g = graph_of params in
      Decomp.check_all (Decomp.verify g (Decomp.ball_carving g)))

let prop_derandomized_mis_valid =
  QCheck.Test.make ~count:40 ~name:"derandomized MIS is a valid MIS"
    arbitrary_gnp (fun params ->
      let g = graph_of params in
      let r = Derand.mis g in
      let is = Is.of_indicator r.Derand.outputs in
      Is.is_independent g is && Is.is_maximal g is)

let prop_maxis_approx_valid =
  QCheck.Test.make ~count:40
    ~name:"SLOCAL MaxIS approximation: valid set, alpha/c certified"
    arbitrary_gnp (fun params ->
      let g = graph_of params in
      let r = Mx.run g in
      Is.is_independent g r.Mx.set
      && Is.is_maximal g r.Mx.set
      && (not r.Mx.per_cluster_exact
         || Is.size r.Mx.set * r.Mx.ratio_bound
            >= Ps_maxis.Exact.independence_number g))

let prop_dominating_any_order =
  QCheck.Test.make ~count:60
    ~name:"SLOCAL greedy dominating set dominates for random orders"
    arbitrary_gnp (fun params ->
      let g = graph_of params in
      let rng = Rng.create (Hashtbl.hash params) in
      let flags, _ = Gd.run_random_order ~rng g in
      Ps_graph.Dominating.is_dominating g (Is.of_indicator flags))

let props =
  List.map QCheck_alcotest.to_alcotest
    [ prop_greedy_mis_any_order;
      prop_greedy_coloring_any_order;
      prop_decomposition_valid;
      prop_derandomized_mis_valid;
      prop_maxis_approx_valid;
      prop_dominating_any_order ]

let suites =
  [ ( "slocal.simulator",
      [ Alcotest.test_case "locality zero" `Quick
          test_slocal_locality_zero_view;
        Alcotest.test_case "ball exposure" `Quick test_slocal_ball_exposure;
        Alcotest.test_case "order respected" `Quick
          test_slocal_order_respected;
        Alcotest.test_case "bad order rejected" `Quick
          test_slocal_bad_order_rejected;
        Alcotest.test_case "order length" `Quick
          test_slocal_order_length_rejected ] );
    ( "slocal.greedy_mis",
      [ Alcotest.test_case "valid" `Quick test_greedy_mis_valid;
        Alcotest.test_case "every order valid" `Quick
          test_greedy_mis_every_order_valid;
        Alcotest.test_case "first node joins" `Quick
          test_greedy_mis_first_node_always_joins;
        Alcotest.test_case "identity order on path" `Quick
          test_greedy_mis_identity_order_path ] );
    ( "slocal.greedy_coloring",
      [ Alcotest.test_case "valid" `Quick test_greedy_coloring_valid;
        Alcotest.test_case "every order valid" `Quick
          test_greedy_coloring_every_order_valid;
        Alcotest.test_case "matches sequential" `Quick
          test_greedy_coloring_matches_sequential ] );
    ( "slocal.decomposition",
      [ Alcotest.test_case "valid on families" `Quick
          test_decomposition_valid_on_families;
        Alcotest.test_case "clique" `Quick
          test_decomposition_clique_one_cluster;
        Alcotest.test_case "empty graph" `Quick
          test_decomposition_empty_graph_singletons;
        Alcotest.test_case "covers all" `Quick test_decomposition_covers_all;
        Alcotest.test_case "custom order" `Quick
          test_decomposition_custom_order ] );
    ( "slocal.derandomize",
      [ Alcotest.test_case "MIS" `Quick test_derandomized_mis;
        Alcotest.test_case "coloring" `Quick test_derandomized_coloring;
        Alcotest.test_case "reuses decomposition" `Quick
          test_derandomized_reuses_decomposition ] );
    ( "slocal.maxis_approx",
      [ Alcotest.test_case "valid" `Quick test_maxis_approx_valid;
        Alcotest.test_case "ratio certified" `Quick
          test_maxis_approx_ratio_certified;
        Alcotest.test_case "clique exact" `Quick
          test_maxis_approx_single_cluster_is_exact;
        Alcotest.test_case "budget fallback" `Quick
          test_maxis_approx_budget_fallback;
        Alcotest.test_case "locality from decomposition" `Quick
          test_maxis_approx_locality_matches_decomposition ] );
    ( "slocal.dominating",
      [ Alcotest.test_case "valid all orders" `Quick
          test_dominating_valid_all_orders;
        Alcotest.test_case "families" `Quick test_dominating_families ] );
    ( "slocal.order_sensitivity",
      [ Alcotest.test_case "crown good order" `Quick
          test_crown_good_order_two_colors;
        Alcotest.test_case "crown paired order" `Quick
          test_crown_paired_order_n_colors;
        Alcotest.test_case "search finds bad coloring" `Quick
          test_order_search_finds_bad_coloring;
        Alcotest.test_case "search minimizes star MIS" `Quick
          test_order_search_mis_star;
        Alcotest.test_case "search replayable" `Quick
          test_order_search_result_is_achievable ] );
    ( "slocal.mpx",
      [ Alcotest.test_case "valid" `Quick test_mpx_valid;
        Alcotest.test_case "beta tradeoff" `Quick test_mpx_beta_tradeoff;
        Alcotest.test_case "cut fraction" `Quick test_mpx_cut_fraction;
        Alcotest.test_case "to_decomposition" `Quick
          test_mpx_to_decomposition_structural;
        Alcotest.test_case "feeds derandomization" `Quick
          test_mpx_feeds_derandomization;
        Alcotest.test_case "graph contract" `Quick test_graph_contract ] );
    ( "slocal.compiler",
      [ Alcotest.test_case "sweep permutation" `Quick
          test_compiler_sweep_order_is_permutation;
        Alcotest.test_case "sweep colors ordered" `Quick
          test_compiler_sweep_respects_colors;
        Alcotest.test_case "MIS" `Quick test_compiler_mis;
        Alcotest.test_case "coloring" `Quick test_compiler_coloring;
        Alcotest.test_case "dominating" `Quick test_compiler_dominating;
        Alcotest.test_case "matching (locality 2)" `Quick
          test_compiler_matching_locality_two;
        Alcotest.test_case "equals SLOCAL run" `Quick
          test_compiler_matches_slocal_run_with_same_order;
        Alcotest.test_case "round bound" `Quick
          test_compiler_round_bound_polylog ] );
    ( "slocal.matching",
      [ Alcotest.test_case "valid" `Quick test_matching_slocal_valid;
        Alcotest.test_case "every order" `Quick
          test_matching_slocal_every_order;
        Alcotest.test_case "path identity order" `Quick
          test_matching_slocal_path_identity_order ] );
    ( "slocal.splitting",
      [ Alcotest.test_case "verifier" `Quick test_splitting_verifier;
        Alcotest.test_case "threshold excuses low degree" `Quick
          test_splitting_threshold_excuses_low_degree;
        Alcotest.test_case "initial potential" `Quick
          test_splitting_initial_potential;
        Alcotest.test_case "deterministic certified" `Quick
          test_splitting_deterministic_succeeds_when_certified;
        Alcotest.test_case "deterministic any order" `Quick
          test_splitting_deterministic_any_order;
        Alcotest.test_case "randomized whp" `Quick
          test_splitting_randomized_usually_works_when_dense;
        Alcotest.test_case "failures <= potential" `Quick
          test_splitting_failure_count_bounded_by_potential ] );
    ("slocal.properties", props) ]
