(* Tests for the kernelization front end and the racing portfolio:
   reduction rules, the undo journal's lift contract (independent AND
   maximal on the original graph for any independent kernel input), the
   vertex-addition repair pass, and Portfolio.race determinism. *)

module G = Ps_graph.Graph
module Gen = Ps_graph.Gen
module B = Ps_util.Bitset
module Is = Ps_maxis.Independent_set
module Kn = Ps_maxis.Kernel
module Approx = Ps_maxis.Approx
module Exact = Ps_maxis.Exact
module Portfolio = Ps_maxis.Portfolio
module Rng = Ps_util.Rng

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* Solve via the presolve combinator: kernelize, greedy on the kernel,
   lift.  The workhorse for exact-size checks on solved families. *)
let kernel_greedy_size ?seed g =
  let rng = Rng.create (Option.value seed ~default:0) in
  let s = (Kn.presolve Approx.greedy_min_degree).Approx.solve rng g in
  Is.verify_exn g s;
  check_bool "maximal" true (Is.is_maximal g s);
  Is.size s

(* ------------------------------------------------------------------ *)
(* Reduction rules on solved families *)

let test_kernel_solves_paths () =
  (* Degree-0/1/2 rules alone finish a path: α(P_n) = ⌈n/2⌉ and the
     kernel is empty, so the journal replay IS the solver. *)
  for n = 1 to 14 do
    let g = Gen.path n in
    let r = Kn.reduce g in
    check "path kernel empty" 0 (Kn.stats r).Kn.kernel_vertices;
    check "alpha(P_n)" ((n + 1) / 2) (kernel_greedy_size g)
  done

let test_kernel_solves_cycles () =
  (* Folding shortens C_n to C_{n-1} until the triangle goes simplicial:
     α(C_n) = ⌊n/2⌋, kernel empty. *)
  for n = 3 to 14 do
    let g = Gen.ring n in
    let r = Kn.reduce g in
    check "cycle kernel empty" 0 (Kn.stats r).Kn.kernel_vertices;
    if n > 3 then
      check_bool "cycle needs folds" true ((Kn.stats r).Kn.folds > 0);
    check "alpha(C_n)" (n / 2) (kernel_greedy_size g)
  done

let test_kernel_rule_counters () =
  (* Star: one pendant take retires everything. *)
  let r = Kn.reduce (Gen.star 9) in
  check "star kernel empty" 0 (Kn.stats r).Kn.kernel_vertices;
  check_bool "star via pendant rule" true ((Kn.stats r).Kn.pendants >= 1);
  check "alpha(star)" 8 (kernel_greedy_size (Gen.star 9));
  (* Complete graph: simplicial removal takes one vertex, kills the rest. *)
  let r = Kn.reduce (Gen.complete 8) in
  check "K8 kernel empty" 0 (Kn.stats r).Kn.kernel_vertices;
  check "K8 one simplicial take" 1 (Kn.stats r).Kn.simplicial;
  check "alpha(K8)" 1 (kernel_greedy_size (Gen.complete 8));
  (* Isolated vertices. *)
  let r = Kn.reduce (G.empty 5) in
  check "isolated count" 5 (Kn.stats r).Kn.isolated;
  check "alpha(empty)" 5 (kernel_greedy_size (G.empty 5))

let test_kernel_disjoint_cliques_exact () =
  let g = Gen.disjoint_cliques 5 4 in
  let r = Kn.reduce g in
  check "cliques kernel empty" 0 (Kn.stats r).Kn.kernel_vertices;
  check "one take per clique" 5 (kernel_greedy_size g)

let test_kernel_stats_shape () =
  let g = Gen.gnp (Rng.create 3) 80 0.08 in
  let r = Kn.reduce g in
  let st = Kn.stats r in
  check "original n" (G.n_vertices g) st.Kn.original_vertices;
  check "original m" (G.n_edges g) st.Kn.original_edges;
  check "kernel n" (G.n_vertices (Kn.graph r)) st.Kn.kernel_vertices;
  check "kernel m" (G.n_edges (Kn.graph r)) st.Kn.kernel_edges;
  check_bool "shrink ratio in [0,1]" true
    (Kn.shrink_ratio st >= 0.0 && Kn.shrink_ratio st <= 1.0);
  (* to_original is injective into the original id range. *)
  let seen = B.create st.Kn.original_vertices in
  Array.iter
    (fun v ->
      check_bool "fresh id" false (B.mem seen v);
      B.add seen v)
    (Kn.to_original r);
  check "map size" st.Kn.kernel_vertices (B.cardinal seen)

(* ------------------------------------------------------------------ *)
(* Lift contract *)

let test_lift_repairs_weak_kernel_answers () =
  (* ANY independent kernel set — even the empty one — must lift to an
     independent maximal set of the original graph. *)
  let rng = Rng.create 11 in
  List.iter
    (fun g ->
      let r = Kn.reduce g in
      let empty = B.create (G.n_vertices (Kn.graph r)) in
      let s = Kn.lift r empty in
      check_bool "independent" true (Is.is_independent g s);
      check_bool "maximal" true (Is.is_maximal g s))
    [ Gen.ring 11; Gen.grid 4 5; Gen.gnp rng 60 0.1; Gen.gnp rng 60 0.3;
      Gen.star 9; Gen.balanced_tree 2 3 ]

let test_lift_rejects_wrong_capacity () =
  let g = Gen.gnp (Rng.create 4) 40 0.2 in
  let r = Kn.reduce g in
  check_bool "capacity mismatch rejected" true
    (try
       ignore (Kn.lift r (B.create (G.n_vertices (Kn.graph r) + 1)));
       false
     with Invalid_argument _ -> true)

let test_vertex_addition_contract () =
  let g = Gen.grid 5 5 in
  let s = Is.of_list g [ 0 ] in
  let v = Kn.vertex_addition g s in
  check_bool "input unchanged" true (Is.size s = 1 && B.mem s 0);
  check_bool "never shrinks" true (B.subset s v);
  check_bool "independent" true (Is.is_independent g v);
  check_bool "maximal" true (Is.is_maximal g v);
  (* A maximal input comes back unchanged. *)
  let m = Is.make_maximal g (Is.empty g) in
  check_bool "fixed point on maximal" true (B.equal m (Kn.vertex_addition g m))

(* ------------------------------------------------------------------ *)
(* Presolve combinator *)

let test_presolve_naming_and_idempotence () =
  let s = Approx.greedy_min_degree in
  let w = Kn.apply `Kernel s in
  Alcotest.(check string)
    "prefix" "kernel+greedy-min-degree" w.Approx.name;
  check_bool "idempotent" true
    (String.equal (Kn.apply `Kernel w).Approx.name w.Approx.name);
  check_bool "none is identity" true
    (String.equal (Kn.apply `None s).Approx.name s.Approx.name);
  check_bool "portfolio already presolved" true
    (Kn.is_presolved Portfolio.solver);
  check_bool "portfolio not double-wrapped" true
    (String.equal (Kn.apply `Kernel Portfolio.solver).Approx.name "portfolio")

(* ------------------------------------------------------------------ *)
(* Clique removal + portfolio *)

let test_clique_removal_valid () =
  let rng = Rng.create 6 in
  List.iter
    (fun g ->
      let s = Ps_maxis.Clique_removal.run (Rng.create 0) g in
      check_bool "independent" true (Is.is_independent g s);
      check_bool "maximal" true (Is.is_maximal g s))
    [ Gen.ring 11; Gen.complete 8; Gen.grid 4 5; Gen.star 9;
      Gen.gnp rng 60 0.1; Gen.gnp rng 60 0.4; G.empty 7;
      Gen.disjoint_cliques 5 4 ]

let test_clique_removal_exact_on_cliques () =
  (* Dense pockets are carved out whole: exact on disjoint cliques. *)
  check "5 cliques" 5
    (Is.size (Ps_maxis.Clique_removal.run (Rng.create 0)
                (Gen.disjoint_cliques 5 4)))

let test_portfolio_certified_and_deterministic () =
  let g = Gen.gnp (Rng.create 8) 80 0.08 in
  let o1 = Portfolio.race (Rng.create 42) g in
  check_bool "independent" true (Is.is_independent g o1.Portfolio.set);
  check_bool "maximal" true (Is.is_maximal g o1.Portfolio.set);
  check "three entries" 3 (List.length o1.Portfolio.sizes);
  check_bool "winner sizes max" true
    (List.for_all
       (fun (_, sz) -> sz <= Is.size o1.Portfolio.set)
       o1.Portfolio.sizes);
  check_bool "kernel shrank" true
    (o1.Portfolio.kernel_stats.Kn.kernel_vertices
    < o1.Portfolio.kernel_stats.Kn.original_vertices);
  (* Same seed, any domain schedule: identical outcome. *)
  let o2 = Portfolio.race ~domains:1 (Rng.create 42) g in
  let o3 = Portfolio.race ~domains:2 (Rng.create 42) g in
  List.iter
    (fun (o : Portfolio.outcome) ->
      Alcotest.(check string) "same winner" o1.Portfolio.winner o.Portfolio.winner;
      check_bool "same set" true (B.equal o1.Portfolio.set o.Portfolio.set);
      Alcotest.(check (list (pair string int)))
        "same sizes" o1.Portfolio.sizes o.Portfolio.sizes)
    [ o2; o3 ]

let test_portfolio_cancellation () =
  let g = Gen.gnp (Rng.create 9) 60 0.1 in
  check_bool "canceled race raises" true
    (try
       ignore (Portfolio.race ~cancel:(fun () -> true) (Rng.create 0) g);
       false
     with Portfolio.Canceled -> true)

(* ------------------------------------------------------------------ *)
(* Properties *)

let arbitrary_gnp =
  QCheck.make
    ~print:(fun (seed, n, p) -> Printf.sprintf "seed=%d n=%d p=%d%%" seed n p)
    QCheck.Gen.(triple (int_bound 500) (int_range 1 60) (int_bound 40))

let graph_of (seed, n, p) =
  Gen.gnp (Rng.create seed) n (float_of_int p /. 100.0)

let prop_kernel_lift_valid_maximal =
  QCheck.Test.make ~count:120
    ~name:"kernel+lift: independent+maximal on the original graph"
    arbitrary_gnp (fun params ->
      let g = graph_of params in
      let rng = Rng.create (Hashtbl.hash params) in
      let s = (Kn.presolve Approx.greedy_min_degree).Approx.solve rng g in
      Is.is_independent g s && Is.is_maximal g s)

let prop_kernel_width_layout_invariant =
  QCheck.Test.make ~count:60
    ~name:"kernel is width-invariant; lift valid on relabeled layouts"
    arbitrary_gnp (fun params ->
      let g = graph_of params in
      let seed = Hashtbl.hash params in
      let lifted gg =
        (Kn.presolve Approx.greedy_min_degree).Approx.solve (Rng.create seed)
          gg
      in
      let s_int = lifted g in
      (* Same instance at int32 width: identical reduction, identical
         answer. *)
      let width_ok =
        B.equal s_int (lifted (G.with_width g `Int32))
      in
      (* Degree-sorted relabeling is a different instance (new ids) but
         the lift contract must hold there too. *)
      let gs, _perm = G.degree_sorted g in
      let s_sorted = lifted gs in
      width_ok
      && Is.is_independent gs s_sorted
      && Is.is_maximal gs s_sorted)

let prop_path_cycle_roundtrip =
  QCheck.Test.make ~count:60 ~name:"folding solves paths and cycles exactly"
    QCheck.(make ~print:string_of_int Gen.(int_range 3 60))
    (fun n ->
      kernel_greedy_size (Gen.path n) = (n + 1) / 2
      && kernel_greedy_size (Gen.ring n) = n / 2)

let prop_kernel_alpha_preserving =
  (* On instances small enough for branch and bound: kernelized greedy
     never beats alpha, and the kernel's own alpha plus the journal's
     takes reaches alpha exactly. *)
  QCheck.Test.make ~count:40 ~name:"kernel preserves alpha"
    QCheck.(
      make
        ~print:(fun (s, n, p) -> Printf.sprintf "seed=%d n=%d p=%d%%" s n p)
        Gen.(triple (int_bound 500) (int_range 1 18) (int_bound 60)))
    (fun params ->
      let g = graph_of params in
      let alpha = Exact.independence_number g in
      let r = Kn.reduce g in
      let kernel_best = Exact.maximum (Kn.graph r) in
      let lifted = Kn.lift r kernel_best in
      Is.is_maximal g lifted && Is.size lifted = alpha)

let prop_vertex_addition_monotone_maximal =
  QCheck.Test.make ~count:120
    ~name:"vertex_addition: superset, independent, maximal" arbitrary_gnp
    (fun params ->
      let g = graph_of params in
      let rng = Rng.create (Hashtbl.hash params) in
      (* A random (possibly far from maximal) independent set. *)
      let s = B.create (G.n_vertices g) in
      Array.iter
        (fun v ->
          if Rng.bool rng && not (G.exists_neighbor g v (B.mem s)) then
            B.add s v)
        (Rng.permutation rng (G.n_vertices g));
      let v = Kn.vertex_addition g s in
      B.subset s v && Is.is_independent g v && Is.is_maximal g v)

let prop_portfolio_valid =
  QCheck.Test.make ~count:40 ~name:"portfolio: certified winner, max of lanes"
    arbitrary_gnp (fun params ->
      let g = graph_of params in
      let o = Portfolio.race (Rng.create (Hashtbl.hash params)) g in
      Is.is_independent g o.Portfolio.set
      && Is.is_maximal g o.Portfolio.set
      && List.for_all
           (fun (_, sz) -> sz <= Is.size o.Portfolio.set)
           o.Portfolio.sizes)

let props =
  List.map QCheck_alcotest.to_alcotest
    [ prop_kernel_lift_valid_maximal; prop_kernel_width_layout_invariant;
      prop_path_cycle_roundtrip; prop_kernel_alpha_preserving;
      prop_vertex_addition_monotone_maximal; prop_portfolio_valid ]

let suites =
  [ ( "maxis.kernel",
      [ Alcotest.test_case "paths solved by rules" `Quick
          test_kernel_solves_paths;
        Alcotest.test_case "cycles solved by folding" `Quick
          test_kernel_solves_cycles;
        Alcotest.test_case "rule counters" `Quick test_kernel_rule_counters;
        Alcotest.test_case "disjoint cliques exact" `Quick
          test_kernel_disjoint_cliques_exact;
        Alcotest.test_case "stats shape" `Quick test_kernel_stats_shape;
        Alcotest.test_case "lift repairs weak answers" `Quick
          test_lift_repairs_weak_kernel_answers;
        Alcotest.test_case "lift rejects wrong capacity" `Quick
          test_lift_rejects_wrong_capacity;
        Alcotest.test_case "vertex_addition contract" `Quick
          test_vertex_addition_contract;
        Alcotest.test_case "presolve naming" `Quick
          test_presolve_naming_and_idempotence ] );
    ( "maxis.portfolio",
      [ Alcotest.test_case "clique removal valid" `Quick
          test_clique_removal_valid;
        Alcotest.test_case "clique removal exact on cliques" `Quick
          test_clique_removal_exact_on_cliques;
        Alcotest.test_case "certified + deterministic" `Quick
          test_portfolio_certified_and_deterministic;
        Alcotest.test_case "cancellation" `Quick test_portfolio_cancellation ]
    );
    ("maxis.kernel.properties", props) ]
