(* Tests for Ps_util.Telemetry: the disabled path records nothing, the
   enabled path's phase spans agree field-by-field with the
   phase_records the reduction returns (pinned against the
   sunflower_12 regression in test_core.ml).

   The recorder is global mutable state shared with every other suite
   running in this binary, so each test brackets itself with
   reset/set_enabled and restores the disabled state on exit. *)

module Tm = Ps_util.Telemetry
module Red = Ps_core.Reduction
module Approx = Ps_maxis.Approx

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let with_recorder ~enabled f =
  let was = Tm.enabled () in
  Tm.reset ();
  Tm.set_enabled enabled;
  Fun.protect
    ~finally:(fun () ->
      Tm.set_enabled was;
      Tm.reset ())
    f

let int_field sp name =
  match Tm.field sp name with
  | Some (Tm.Int i) -> i
  | _ -> Alcotest.failf "span %s: missing int field %s" sp.Tm.span_name name

let float_field sp name =
  match Tm.field sp name with
  | Some (Tm.Float f) -> f
  | _ -> Alcotest.failf "span %s: missing float field %s" sp.Tm.span_name name

(* ------------------------------------------------------------------ *)
(* Disabled path *)

let test_disabled_records_nothing () =
  with_recorder ~enabled:false @@ fun () ->
  let r = Tm.with_span "outer" (fun () -> Tm.incr "c"; Tm.set_int "f" 1; 42) in
  check "with_span transparent" 42 r;
  Tm.count "c" 10;
  Tm.gauge "g" 3.0;
  Tm.gauge_max "g" 9.0;
  check "no spans" 0 (List.length (Tm.root_spans ()));
  check "no counter" 0 (Tm.counter_value "c");
  check_bool "no gauge" true (Tm.gauge_value "g" = None);
  Alcotest.(check string) "empty trace" "" (Tm.to_json_lines ())

(* ------------------------------------------------------------------ *)
(* Recording basics *)

let test_span_nesting_and_fields () =
  with_recorder ~enabled:true @@ fun () ->
  Tm.with_span "outer" (fun () ->
      Tm.set_int "a" 1;
      Tm.set_int "a" 2;  (* later write shadows *)
      Tm.with_span "inner" (fun () -> Tm.set_str "who" "x"));
  match Tm.root_spans () with
  | [ outer ] ->
      Alcotest.(check string) "name" "outer" outer.Tm.span_name;
      check "shadowed field" 2 (int_field outer "a");
      check "one child" 1 (List.length outer.Tm.children);
      check_bool "duration nonnegative" true (Tm.duration_ns outer >= 0L);
      check "find_spans inner" 1 (List.length (Tm.find_spans "inner"))
  | l -> Alcotest.failf "expected one root span, got %d" (List.length l)

let test_span_closed_on_raise () =
  with_recorder ~enabled:true @@ fun () ->
  (try Tm.with_span "boom" (fun () -> failwith "x") with Failure _ -> ());
  check "span recorded" 1 (List.length (Tm.find_spans "boom"));
  (* the stack unwound: the next span is a root, not a child of boom *)
  Tm.with_span "after" (fun () -> ());
  check "both roots" 2 (List.length (Tm.root_spans ()))

let test_counters_and_gauges () =
  with_recorder ~enabled:true @@ fun () ->
  Tm.incr "c";
  Tm.count "c" 4;
  check "counter" 5 (Tm.counter_value "c");
  Tm.gauge "g" 2.0;
  Tm.gauge_max "g" 7.0;
  Tm.gauge_max "g" 3.0;
  check_bool "gauge max" true (Tm.gauge_value "g" = Some 7.0)

let test_json_lines_parse_shape () =
  with_recorder ~enabled:true @@ fun () ->
  Tm.with_span "s" (fun () -> Tm.set_float "lambda" infinity);
  Tm.incr "c";
  let lines =
    Tm.to_json_lines () |> String.split_on_char '\n'
    |> List.filter (fun l -> l <> "")
  in
  check "two lines" 2 (List.length lines);
  List.iter
    (fun l ->
      check_bool "object per line" true
        (String.length l >= 2
        && l.[0] = '{'
        && l.[String.length l - 1] = '}');
      (* the non-finite float must not leak as a bare JSON token *)
      check_bool "no bare inf" true
        (not (String.length l > 4 && String.sub l 0 4 = "inf")))
    lines

(* ------------------------------------------------------------------ *)
(* Enabled path agrees with the reduction's own phase records *)

let test_reduction_phase_spans_match_records () =
  with_recorder ~enabled:true @@ fun () ->
  let h = Ps_hypergraph.Hio.read_file "../data/sunflower_12.hg" in
  let r = Red.run ~seed:0 ~solver:Approx.greedy_min_degree ~k:2 h in
  (* one span per phase, in order *)
  let phase_spans = Tm.find_spans "phase" in
  check "one span per phase" r.Red.total_phases (List.length phase_spans);
  List.iteri
    (fun i (sp, (p : Red.phase_record)) ->
      check (Printf.sprintf "phase %d index" i) p.Red.phase
        (int_field sp "phase");
      check "edges_before" p.Red.edges_before (int_field sp "edges_before");
      check "conflict_vertices" p.Red.conflict_vertices
        (int_field sp "conflict_vertices");
      check "conflict_edges" p.Red.conflict_edges
        (int_field sp "conflict_edges");
      check "is_size" p.Red.is_size (int_field sp "is_size");
      check "newly_happy" p.Red.newly_happy (int_field sp "newly_happy");
      Alcotest.(check (float 1e-9))
        "lambda_effective" p.Red.lambda_effective
        (float_field sp "lambda_effective"))
    (List.combine phase_spans r.Red.phases);
  (* enclosing run span and global counters agree too *)
  (match Tm.find_spans "reduction.run" with
  | [ run ] ->
      check "total_phases field" r.Red.total_phases
        (int_field run "total_phases");
      check "colors_used field" r.Red.colors_used
        (int_field run "colors_used")
  | l -> Alcotest.failf "expected one reduction.run span, got %d"
           (List.length l));
  check "phases counter" r.Red.total_phases
    (Tm.counter_value "reduction.phases");
  check "edges_retired counter" 12 (Tm.counter_value "reduction.edges_retired");
  (* the sunflower regression numbers themselves, via telemetry *)
  match phase_spans with
  | [ sp ] ->
      check "edges_before = 12" 12 (int_field sp "edges_before");
      check "conflict_vertices = 144" 144 (int_field sp "conflict_vertices");
      check "conflict_edges = 4356" 4356 (int_field sp "conflict_edges");
      check "is_size = 12" 12 (int_field sp "is_size")
  | _ -> Alcotest.fail "sunflower greedy run should be a single phase"

let suites =
  [ ( "util.telemetry",
      [ Alcotest.test_case "disabled records nothing" `Quick
          test_disabled_records_nothing;
        Alcotest.test_case "span nesting and fields" `Quick
          test_span_nesting_and_fields;
        Alcotest.test_case "span closed on raise" `Quick
          test_span_closed_on_raise;
        Alcotest.test_case "counters and gauges" `Quick
          test_counters_and_gauges;
        Alcotest.test_case "json lines shape" `Quick
          test_json_lines_parse_shape;
        Alcotest.test_case "phase spans match phase records" `Quick
          test_reduction_phase_spans_match_records ] ) ]
