(* Unit and property tests for Ps_util: RNG, bitsets, union-find,
   priority queue, statistics, tables. *)

module Rng = Ps_util.Rng
module B = Ps_util.Bitset
module Uf = Ps_util.Union_find
module Pq = Ps_util.Pqueue
module Stats = Ps_util.Stats
module Table = Ps_util.Table

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Rng *)

let test_rng_deterministic () =
  let a = Rng.create 7 and b = Rng.create 7 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  check_bool "different seeds differ" false (Rng.bits64 a = Rng.bits64 b)

let test_rng_int_range () =
  let rng = Rng.create 3 in
  for _ = 1 to 1000 do
    let v = Rng.int rng 17 in
    check_bool "in range" true (v >= 0 && v < 17)
  done

let test_rng_int_in_range () =
  let rng = Rng.create 4 in
  for _ = 1 to 1000 do
    let v = Rng.int_in rng 5 9 in
    check_bool "in closed range" true (v >= 5 && v <= 9)
  done

let test_rng_int_bad_bound () =
  Alcotest.check_raises "zero bound" (Invalid_argument
    "Rng.int: bound must be positive") (fun () ->
      ignore (Rng.int (Rng.create 0) 0))

let test_rng_float_range () =
  let rng = Rng.create 5 in
  for _ = 1 to 1000 do
    let v = Rng.float rng 2.5 in
    check_bool "in range" true (v >= 0.0 && v < 2.5)
  done

let test_rng_bernoulli_extremes () =
  let rng = Rng.create 6 in
  for _ = 1 to 50 do
    check_bool "p=1" true (Rng.bernoulli rng 1.0);
    check_bool "p=0" false (Rng.bernoulli rng 0.0)
  done

let test_rng_bernoulli_mean () =
  let rng = Rng.create 8 in
  let hits = ref 0 in
  let trials = 20_000 in
  for _ = 1 to trials do
    if Rng.bernoulli rng 0.3 then incr hits
  done;
  let freq = float_of_int !hits /. float_of_int trials in
  check_bool "freq near 0.3" true (abs_float (freq -. 0.3) < 0.02)

let test_rng_geometric_mean () =
  (* Geometric(p) has mean (1-p)/p. *)
  let rng = Rng.create 9 in
  let p = 0.25 in
  let sum = ref 0 in
  let trials = 20_000 in
  for _ = 1 to trials do
    sum := !sum + Rng.geometric rng p
  done;
  let mean = float_of_int !sum /. float_of_int trials in
  check_bool "mean near 3" true (abs_float (mean -. 3.0) < 0.15)

let test_rng_geometric_p1 () =
  let rng = Rng.create 10 in
  for _ = 1 to 20 do
    check "p=1 gives 0" 0 (Rng.geometric rng 1.0)
  done

let test_rng_permutation () =
  let rng = Rng.create 11 in
  let p = Rng.permutation rng 100 in
  let sorted = Array.copy p in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is permutation"
    (Array.init 100 (fun i -> i))
    sorted

let test_rng_permutation_varies () =
  let rng = Rng.create 12 in
  let p1 = Rng.permutation rng 50 and p2 = Rng.permutation rng 50 in
  check_bool "two draws differ" false (p1 = p2)

let test_rng_sample_without_replacement () =
  let rng = Rng.create 13 in
  List.iter
    (fun (k, n) ->
      let s = Rng.sample_without_replacement rng k n in
      check "size" k (Array.length s);
      let sorted = Array.copy s in
      Array.sort compare sorted;
      let distinct = Array.to_list sorted |> List.sort_uniq compare in
      check "distinct" k (List.length distinct);
      Array.iter (fun v -> check_bool "in range" true (v >= 0 && v < n)) s)
    [ (0, 5); (3, 100); (99, 100); (100, 100); (5, 1000) ]

let test_rng_split_independent () =
  let master = Rng.create 14 in
  let c0 = Rng.split_at master 0 and c1 = Rng.split_at master 1 in
  check_bool "children differ" false (Rng.bits64 c0 = Rng.bits64 c1);
  (* split_at must not consume master's stream *)
  let m1 = Rng.create 14 in
  ignore (Rng.split_at m1 0);
  let m2 = Rng.create 14 in
  Alcotest.(check int64) "split_at preserves master" (Rng.bits64 m2)
    (Rng.bits64 m1)

let test_rng_copy_replays () =
  let a = Rng.create 15 in
  ignore (Rng.bits64 a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copy replays" (Rng.bits64 a) (Rng.bits64 b)

let test_rng_choice () =
  let rng = Rng.create 16 in
  let arr = [| 10; 20; 30 |] in
  for _ = 1 to 100 do
    check_bool "member" true (Array.mem (Rng.choice rng arr) arr)
  done

(* ------------------------------------------------------------------ *)
(* Bitset *)

let test_bitset_add_mem () =
  let s = B.create 100 in
  check_bool "absent" false (B.mem s 42);
  B.add s 42;
  check_bool "present" true (B.mem s 42);
  B.remove s 42;
  check_bool "removed" false (B.mem s 42)

let test_bitset_bounds () =
  let s = B.create 10 in
  Alcotest.check_raises "negative" (Invalid_argument
    "Bitset: index out of range") (fun () -> B.add s (-1));
  Alcotest.check_raises "too large" (Invalid_argument
    "Bitset: index out of range") (fun () -> ignore (B.mem s 10))

let test_bitset_cardinal () =
  let s = B.create 200 in
  List.iter (B.add s) [ 0; 1; 63; 64; 127; 199 ];
  check "cardinal" 6 (B.cardinal s);
  B.add s 0;
  check "idempotent add" 6 (B.cardinal s)

let test_bitset_fill_clear () =
  let s = B.create 77 in
  B.fill s;
  check "full" 77 (B.cardinal s);
  check_bool "not empty" false (B.is_empty s);
  B.clear s;
  check "cleared" 0 (B.cardinal s);
  check_bool "empty" true (B.is_empty s)

let test_bitset_set_algebra () =
  let a = B.of_list 50 [ 1; 2; 3; 10 ] in
  let b = B.of_list 50 [ 3; 10; 20 ] in
  let u = B.copy a in
  B.union_into u b;
  Alcotest.(check (list int)) "union" [ 1; 2; 3; 10; 20 ] (B.to_list u);
  let i = B.copy a in
  B.inter_into i b;
  Alcotest.(check (list int)) "inter" [ 3; 10 ] (B.to_list i);
  let d = B.copy a in
  B.diff_into d b;
  Alcotest.(check (list int)) "diff" [ 1; 2 ] (B.to_list d)

let test_bitset_subset_disjoint () =
  let a = B.of_list 30 [ 1; 2 ] in
  let b = B.of_list 30 [ 1; 2; 3 ] in
  let c = B.of_list 30 [ 4; 5 ] in
  check_bool "subset" true (B.subset a b);
  check_bool "not subset" false (B.subset b a);
  check_bool "disjoint" true (B.disjoint a c);
  check_bool "not disjoint" false (B.disjoint a b);
  check_bool "empty subset of all" true (B.subset (B.create 30) a)

let test_bitset_iter_order () =
  let s = B.of_list 300 [ 299; 0; 150; 63; 62 ] in
  Alcotest.(check (list int)) "sorted" [ 0; 62; 63; 150; 299 ] (B.to_list s)

let test_bitset_choose () =
  let s = B.create 20 in
  Alcotest.(check (option int)) "empty" None (B.choose_opt s);
  B.add s 13;
  B.add s 7;
  Alcotest.(check (option int)) "smallest" (Some 7) (B.choose_opt s)

let test_bitset_equal_capacity_mismatch () =
  Alcotest.check_raises "capacity mismatch" (Invalid_argument
    "Bitset: capacity mismatch") (fun () ->
      ignore (B.equal (B.create 3) (B.create 4)))

let test_bitset_fill_boundaries () =
  (* 62 bits per word: exercise fill at capacities around the word
     boundary (and zero). fill must set exactly the universe — the
     masked final word may not leak bits above the capacity, or
     cardinal/iter/equal would disagree. *)
  List.iter
    (fun cap ->
      let s = B.create cap in
      B.fill s;
      check (Printf.sprintf "cardinal at %d" cap) cap (B.cardinal s);
      let seen = ref [] in
      B.iter (fun i -> seen := i :: !seen) s;
      Alcotest.(check (list int))
        (Printf.sprintf "iter at %d" cap)
        (List.init cap (fun i -> i))
        (List.rev !seen);
      (* filled set equals the one built element-by-element *)
      let e = B.create cap in
      for i = 0 to cap - 1 do B.add e i done;
      check_bool (Printf.sprintf "equal at %d" cap) true (B.equal s e);
      check_bool (Printf.sprintf "subset at %d" cap) true (B.subset e s);
      (* removing the last element must drop cardinal by exactly one *)
      if cap > 0 then begin
        B.remove s (cap - 1);
        check (Printf.sprintf "remove at %d" cap) (cap - 1) (B.cardinal s)
      end)
    [ 0; 1; 61; 62; 63; 124 ]

let test_bitset_word_boundary () =
  (* 62 bits per word: exercise indices straddling the boundary. *)
  let s = B.create 124 in
  List.iter (B.add s) [ 61; 62; 123 ];
  check_bool "61" true (B.mem s 61);
  check_bool "62" true (B.mem s 62);
  check_bool "123" true (B.mem s 123);
  check_bool "60" false (B.mem s 60);
  check "cardinal" 3 (B.cardinal s)

(* ------------------------------------------------------------------ *)
(* Union-find *)

let test_uf_basic () =
  let uf = Uf.create 10 in
  check "initial count" 10 (Uf.count uf);
  check_bool "fresh union" true (Uf.union uf 0 1);
  check_bool "repeat union" false (Uf.union uf 0 1);
  check_bool "same" true (Uf.same uf 0 1);
  check_bool "not same" false (Uf.same uf 0 2);
  check "count" 9 (Uf.count uf)

let test_uf_sizes () =
  let uf = Uf.create 6 in
  ignore (Uf.union uf 0 1);
  ignore (Uf.union uf 1 2);
  check "size of merged" 3 (Uf.size_of uf 2);
  check "size of singleton" 1 (Uf.size_of uf 5)

let test_uf_transitivity () =
  let uf = Uf.create 100 in
  for i = 0 to 98 do
    ignore (Uf.union uf i (i + 1))
  done;
  check "single set" 1 (Uf.count uf);
  check_bool "ends connected" true (Uf.same uf 0 99)

let test_uf_components () =
  let uf = Uf.create 5 in
  ignore (Uf.union uf 0 4);
  ignore (Uf.union uf 1 2);
  let comps = Uf.components uf in
  let sorted =
    Array.to_list comps |> List.map (List.sort compare)
    |> List.sort compare
  in
  Alcotest.(check (list (list int)))
    "components" [ [ 0; 4 ]; [ 1; 2 ]; [ 3 ] ] sorted

(* ------------------------------------------------------------------ *)
(* Pqueue *)

let test_pq_basic () =
  let q = Pq.create 10 in
  check_bool "empty" true (Pq.is_empty q);
  Pq.insert q 3 30;
  Pq.insert q 5 10;
  Pq.insert q 7 20;
  check "cardinal" 3 (Pq.cardinal q);
  Alcotest.(check (pair int int)) "min" (5, 10) (Pq.peek_min q);
  Alcotest.(check (pair int int)) "pop" (5, 10) (Pq.pop_min q);
  Alcotest.(check (pair int int)) "next" (7, 20) (Pq.pop_min q);
  Alcotest.(check (pair int int)) "last" (3, 30) (Pq.pop_min q);
  check_bool "drained" true (Pq.is_empty q)

let test_pq_update () =
  let q = Pq.create 10 in
  Pq.insert q 0 100;
  Pq.insert q 1 50;
  Pq.update q 0 10;
  Alcotest.(check (pair int int)) "decrease-key" (0, 10) (Pq.pop_min q);
  Pq.insert q 2 1;
  Pq.update q 2 200;
  Alcotest.(check (pair int int)) "increase-key" (1, 50) (Pq.pop_min q)

let test_pq_remove () =
  let q = Pq.create 10 in
  List.iter (fun (k, p) -> Pq.insert q k p)
    [ (0, 5); (1, 3); (2, 8); (3, 1) ];
  Pq.remove q 3;
  check_bool "gone" false (Pq.mem q 3);
  Alcotest.(check (pair int int)) "new min" (1, 3) (Pq.pop_min q)

let test_pq_tie_break () =
  let q = Pq.create 10 in
  Pq.insert q 9 7;
  Pq.insert q 2 7;
  Pq.insert q 5 7;
  Alcotest.(check (pair int int)) "smallest key first" (2, 7) (Pq.pop_min q)

let test_pq_duplicate_insert () =
  let q = Pq.create 5 in
  Pq.insert q 1 1;
  Alcotest.check_raises "duplicate" (Invalid_argument
    "Pqueue.insert: key already present") (fun () -> Pq.insert q 1 2)

let test_pq_empty_pop () =
  let q = Pq.create 5 in
  Alcotest.check_raises "empty pop" Not_found (fun () ->
      ignore (Pq.pop_min q))

let test_pq_out_of_range () =
  let q = Pq.create 5 in
  check "capacity" 5 (Pq.capacity q);
  Alcotest.check_raises "negative key"
    (Invalid_argument "Pqueue: key -1 out of range [0, 5)") (fun () ->
      Pq.insert q (-1) 0);
  Alcotest.check_raises "key = capacity"
    (Invalid_argument "Pqueue: key 5 out of range [0, 5)") (fun () ->
      ignore (Pq.mem q 5));
  Alcotest.check_raises "way out"
    (Invalid_argument "Pqueue: key 1000 out of range [0, 5)") (fun () ->
      Pq.update q 1000 3);
  (* the failed operations must not have corrupted the queue *)
  Pq.insert q 4 7;
  Alcotest.(check (pair int int)) "still works" (4, 7) (Pq.pop_min q)

let test_pq_zero_capacity () =
  let q = Pq.create 0 in
  check_bool "empty" true (Pq.is_empty q);
  Alcotest.check_raises "no valid keys"
    (Invalid_argument "Pqueue: key 0 out of range [0, 0)") (fun () ->
      Pq.insert q 0 0)

let test_pq_heap_sort () =
  (* Popping everything must yield priorities in nondecreasing order. *)
  let rng = Rng.create 99 in
  let q = Pq.create 500 in
  for key = 0 to 499 do
    Pq.insert q key (Rng.int rng 1000)
  done;
  let last = ref min_int in
  while not (Pq.is_empty q) do
    let _, p = Pq.pop_min q in
    check_bool "nondecreasing" true (p >= !last);
    last := p
  done

(* ------------------------------------------------------------------ *)
(* Stats *)

let test_stats_mean_stddev () =
  let a = [| 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 |] in
  check_float "mean" 5.0 (Stats.mean a);
  check_bool "stddev (sample)" true
    (abs_float (Stats.stddev a -. 2.138089935) < 1e-6)

let test_stats_single () =
  check_float "mean" 3.0 (Stats.mean [| 3.0 |]);
  check_float "stddev" 0.0 (Stats.stddev [| 3.0 |])

let test_stats_empty () =
  Alcotest.check_raises "empty" (Invalid_argument "Stats: empty array")
    (fun () -> ignore (Stats.mean [||]))

let test_stats_percentile () =
  let a = [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  check_float "p0" 1.0 (Stats.percentile a 0.0);
  check_float "p50" 3.0 (Stats.percentile a 50.0);
  check_float "p100" 5.0 (Stats.percentile a 100.0);
  check_float "p25 interpolates" 2.0 (Stats.percentile a 25.0)

let test_stats_percentile_unsorted_input () =
  let a = [| 5.0; 1.0; 3.0; 2.0; 4.0 |] in
  check_float "median of unsorted" 3.0 (Stats.median a);
  (* input must not be mutated *)
  Alcotest.(check (array (float 0.0))) "unmutated"
    [| 5.0; 1.0; 3.0; 2.0; 4.0 |] a

let test_stats_summary () =
  let s = Stats.summarize [| 1.0; 2.0; 3.0; 4.0 |] in
  check "count" 4 s.Stats.count;
  check_float "min" 1.0 s.Stats.min;
  check_float "max" 4.0 s.Stats.max;
  check_float "median" 2.5 s.Stats.median

let test_stats_geometric_mean () =
  check_float "gm" 4.0 (Stats.geometric_mean [| 2.0; 8.0 |]);
  Alcotest.check_raises "nonpositive" (Invalid_argument
    "Stats.geometric_mean: nonpositive entry") (fun () ->
      ignore (Stats.geometric_mean [| 1.0; 0.0 |]))

let test_stats_linear_regression () =
  let slope, intercept, r2 =
    Stats.linear_regression [| (0.0, 1.0); (1.0, 3.0); (2.0, 5.0) |]
  in
  check_float "slope" 2.0 slope;
  check_float "intercept" 1.0 intercept;
  check_float "r2" 1.0 r2;
  (* constant y: slope 0, perfect fit by convention *)
  let slope, _, r2 =
    Stats.linear_regression [| (0.0, 4.0); (1.0, 4.0); (5.0, 4.0) |]
  in
  check_float "flat slope" 0.0 slope;
  check_float "flat r2" 1.0 r2;
  (* noisy data: r2 strictly below 1 *)
  let _, _, r2 =
    Stats.linear_regression [| (0.0, 0.0); (1.0, 2.0); (2.0, 1.0) |]
  in
  check_bool "noisy r2 < 1" true (r2 < 1.0);
  Alcotest.check_raises "degenerate x" (Invalid_argument
    "Stats.linear_regression: all x values equal") (fun () ->
      ignore (Stats.linear_regression [| (1.0, 0.0); (1.0, 5.0) |]))

let test_stats_histogram () =
  let bins = Stats.histogram ~bins:2 [| 0.0; 1.0; 9.0; 10.0 |] in
  check "two bins" 2 (Array.length bins);
  let _, _, c0 = bins.(0) and _, _, c1 = bins.(1) in
  check "low bin" 2 c0;
  check "high bin" 2 c1

let test_stats_histogram_degenerate () =
  let bins = Stats.histogram [| 5.0; 5.0; 5.0 |] in
  check "one bin" 1 (Array.length bins);
  let _, _, c = bins.(0) in
  check "all collapse" 3 c

(* ------------------------------------------------------------------ *)
(* Table *)

let test_table_render () =
  let t = Table.create ~aligns:[ Table.Left; Table.Right ] [ "name"; "n" ] in
  Table.add_row t [ "alpha"; "1" ];
  Table.add_row t [ "b"; "22" ];
  let rendered = Table.render t in
  check_bool "contains header" true
    (String.length rendered > 0
    && String.split_on_char '\n' rendered |> List.length >= 5);
  check_bool "alpha present" true
    (String.split_on_char '\n' rendered
    |> List.exists (fun l -> String.length l > 0 && String.index_opt l 'a' <> None))

let test_table_row_mismatch () =
  let t = Table.create [ "a"; "b" ] in
  Alcotest.check_raises "bad row" (Invalid_argument
    "Table.add_row: row length mismatch") (fun () ->
      Table.add_row t [ "only-one" ])

let test_table_cells () =
  Alcotest.(check string) "int" "42" (Table.cell_int 42);
  Alcotest.(check string) "float" "3.14" (Table.cell_float ~decimals:2 3.14159);
  Alcotest.(check string) "ratio" "1.500" (Table.cell_ratio 1.5);
  Alcotest.(check string) "bool" "yes" (Table.cell_bool true)

(* ------------------------------------------------------------------ *)
(* qcheck properties *)

let prop_bitset_roundtrip =
  QCheck.Test.make ~count:200 ~name:"bitset of_list/to_list roundtrip"
    QCheck.(list (int_bound 99))
    (fun xs ->
      let distinct = List.sort_uniq compare xs in
      B.to_list (B.of_list 100 xs) = distinct)

let prop_bitset_union_commutes =
  QCheck.Test.make ~count:200 ~name:"bitset union commutes"
    QCheck.(pair (list (int_bound 63)) (list (int_bound 63)))
    (fun (xs, ys) ->
      let a = B.of_list 64 xs and b = B.of_list 64 ys in
      let ab = B.copy a and ba = B.copy b in
      B.union_into ab b;
      B.union_into ba a;
      B.equal ab ba)

let prop_bitset_demorgan =
  QCheck.Test.make ~count:200 ~name:"bitset |A| + |B| = |A∪B| + |A∩B|"
    QCheck.(pair (list (int_bound 80)) (list (int_bound 80)))
    (fun (xs, ys) ->
      let a = B.of_list 81 xs and b = B.of_list 81 ys in
      let u = B.copy a and i = B.copy a in
      B.union_into u b;
      B.inter_into i b;
      B.cardinal a + B.cardinal b = B.cardinal u + B.cardinal i)

let prop_permutation_valid =
  QCheck.Test.make ~count:100 ~name:"rng permutation is a bijection"
    QCheck.(pair small_nat small_nat)
    (fun (seed, n) ->
      let n = n + 1 in
      let p = Rng.permutation (Rng.create seed) n in
      let sorted = Array.copy p in
      Array.sort compare sorted;
      sorted = Array.init n (fun i -> i))

let prop_pqueue_sorts =
  QCheck.Test.make ~count:100 ~name:"pqueue pops sorted"
    QCheck.(list_of_size (QCheck.Gen.int_range 0 50) (int_bound 1000))
    (fun prios ->
      let q = Pq.create (List.length prios + 1) in
      List.iteri (fun k p -> Pq.insert q k p) prios;
      let rec drain last =
        if Pq.is_empty q then true
        else
          let _, p = Pq.pop_min q in
          p >= last && drain p
      in
      drain min_int)

(* Model-based check of Pqueue against a sorted association list.  Each
   random (key, prio) pair drives one step: insert when absent, update
   when present — with an occasional remove — and every pop_min must
   agree with the model's (prio, key)-minimum. *)
let prop_pqueue_model =
  let cap = 16 in
  let model_min m =
    List.fold_left
      (fun best (k, p) ->
        match best with
        | Some (bk, bp) when (bp, bk) <= (p, k) -> best
        | _ -> Some (k, p))
      None m
  in
  QCheck.Test.make ~count:200 ~name:"pqueue agrees with assoc-list model"
    QCheck.(
      list (triple (int_bound (cap - 1)) (int_bound 100) (int_bound 4)))
    (fun steps ->
      let q = Pq.create cap in
      let model = ref [] in
      List.for_all
        (fun (key, prio, action) ->
          let present_q = Pq.mem q key in
          let present_m = List.mem_assoc key !model in
          present_q = present_m
          &&
          match action with
          | 0 when present_m ->
              Pq.remove q key;
              model := List.remove_assoc key !model;
              true
          | 1 when not (Pq.is_empty q) ->
              let popped = Pq.pop_min q in
              let expected = model_min !model in
              model := List.remove_assoc (fst popped) !model;
              Some popped = expected
          | _ ->
              if present_m then begin
                Pq.update q key prio;
                model := (key, prio) :: List.remove_assoc key !model
              end
              else begin
                Pq.insert q key prio;
                model := (key, prio) :: !model
              end;
              Pq.cardinal q = List.length !model
              && Pq.priority q key = prio)
        steps
      &&
      (* drain: the full pop sequence must equal the model sorted by
         (prio, key) *)
      let rec drain acc =
        if Pq.is_empty q then List.rev acc
        else drain (Pq.pop_min q :: acc)
      in
      drain []
      = List.sort
          (fun (k1, p1) (k2, p2) -> compare (p1, k1) (p2, k2))
          !model)

let prop_pqueue_rejects_out_of_range =
  QCheck.Test.make ~count:100 ~name:"pqueue rejects out-of-range keys"
    QCheck.(pair (int_bound 20) int)
    (fun (cap, key) ->
      QCheck.assume (key < 0 || key >= cap);
      let q = Pq.create cap in
      match Pq.insert q key 0 with
      | () -> false
      | exception Invalid_argument _ -> Pq.is_empty q)

let prop_percentile_monotone =
  QCheck.Test.make ~count:100 ~name:"percentile is monotone in q"
    QCheck.(list_of_size (QCheck.Gen.int_range 1 30) (float_bound_exclusive 100.0))
    (fun xs ->
      let a = Array.of_list xs in
      let ps = [ 0.0; 10.0; 25.0; 50.0; 75.0; 90.0; 100.0 ] in
      let values = List.map (Stats.percentile a) ps in
      let rec mono = function
        | x :: (y :: _ as rest) -> x <= y && mono rest
        | _ -> true
      in
      mono values)

let props =
  List.map QCheck_alcotest.to_alcotest
    [ prop_bitset_roundtrip;
      prop_bitset_union_commutes;
      prop_bitset_demorgan;
      prop_permutation_valid;
      prop_pqueue_sorts;
      prop_pqueue_model;
      prop_pqueue_rejects_out_of_range;
      prop_percentile_monotone ]

let suites =
  [ ( "util.rng",
      [ Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
        Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
        Alcotest.test_case "int range" `Quick test_rng_int_range;
        Alcotest.test_case "int_in range" `Quick test_rng_int_in_range;
        Alcotest.test_case "int bad bound" `Quick test_rng_int_bad_bound;
        Alcotest.test_case "float range" `Quick test_rng_float_range;
        Alcotest.test_case "bernoulli extremes" `Quick
          test_rng_bernoulli_extremes;
        Alcotest.test_case "bernoulli mean" `Quick test_rng_bernoulli_mean;
        Alcotest.test_case "geometric mean" `Quick test_rng_geometric_mean;
        Alcotest.test_case "geometric p=1" `Quick test_rng_geometric_p1;
        Alcotest.test_case "permutation" `Quick test_rng_permutation;
        Alcotest.test_case "permutation varies" `Quick
          test_rng_permutation_varies;
        Alcotest.test_case "sample without replacement" `Quick
          test_rng_sample_without_replacement;
        Alcotest.test_case "split independence" `Quick
          test_rng_split_independent;
        Alcotest.test_case "copy replays" `Quick test_rng_copy_replays;
        Alcotest.test_case "choice" `Quick test_rng_choice ] );
    ( "util.bitset",
      [ Alcotest.test_case "add/mem/remove" `Quick test_bitset_add_mem;
        Alcotest.test_case "bounds" `Quick test_bitset_bounds;
        Alcotest.test_case "cardinal" `Quick test_bitset_cardinal;
        Alcotest.test_case "fill/clear" `Quick test_bitset_fill_clear;
        Alcotest.test_case "fill at word boundaries" `Quick
          test_bitset_fill_boundaries;
        Alcotest.test_case "set algebra" `Quick test_bitset_set_algebra;
        Alcotest.test_case "subset/disjoint" `Quick
          test_bitset_subset_disjoint;
        Alcotest.test_case "iteration order" `Quick test_bitset_iter_order;
        Alcotest.test_case "choose" `Quick test_bitset_choose;
        Alcotest.test_case "capacity mismatch" `Quick
          test_bitset_equal_capacity_mismatch;
        Alcotest.test_case "word boundary" `Quick test_bitset_word_boundary ]
    );
    ( "util.union_find",
      [ Alcotest.test_case "basic" `Quick test_uf_basic;
        Alcotest.test_case "sizes" `Quick test_uf_sizes;
        Alcotest.test_case "transitivity" `Quick test_uf_transitivity;
        Alcotest.test_case "components" `Quick test_uf_components ] );
    ( "util.pqueue",
      [ Alcotest.test_case "basic" `Quick test_pq_basic;
        Alcotest.test_case "update" `Quick test_pq_update;
        Alcotest.test_case "remove" `Quick test_pq_remove;
        Alcotest.test_case "tie break" `Quick test_pq_tie_break;
        Alcotest.test_case "duplicate insert" `Quick
          test_pq_duplicate_insert;
        Alcotest.test_case "empty pop" `Quick test_pq_empty_pop;
        Alcotest.test_case "out of range" `Quick test_pq_out_of_range;
        Alcotest.test_case "zero capacity" `Quick test_pq_zero_capacity;
        Alcotest.test_case "heap sort" `Quick test_pq_heap_sort ] );
    ( "util.stats",
      [ Alcotest.test_case "mean/stddev" `Quick test_stats_mean_stddev;
        Alcotest.test_case "single element" `Quick test_stats_single;
        Alcotest.test_case "empty raises" `Quick test_stats_empty;
        Alcotest.test_case "percentile" `Quick test_stats_percentile;
        Alcotest.test_case "percentile unsorted" `Quick
          test_stats_percentile_unsorted_input;
        Alcotest.test_case "summary" `Quick test_stats_summary;
        Alcotest.test_case "geometric mean" `Quick test_stats_geometric_mean;
        Alcotest.test_case "linear regression" `Quick
          test_stats_linear_regression;
        Alcotest.test_case "histogram" `Quick test_stats_histogram;
        Alcotest.test_case "histogram degenerate" `Quick
          test_stats_histogram_degenerate ] );
    ( "util.table",
      [ Alcotest.test_case "render" `Quick test_table_render;
        Alcotest.test_case "row mismatch" `Quick test_table_row_mismatch;
        Alcotest.test_case "cell formatting" `Quick test_table_cells ] );
    ("util.properties", props) ]
