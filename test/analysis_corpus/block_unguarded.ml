(* Seeded violation: a [@pslint.nonblocking] root reaches a channel
   read through a helper.  The blocking rule must flag [input_line] in
   [parse] with the chain [pump -> parse]. *)

let parse ic = input_line ic

let[@pslint.nonblocking] pump ic =
  let line = parse ic in
  String.length line
