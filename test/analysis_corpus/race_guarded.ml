(* The repaired shapes of [Race_unguarded]: the same module-level state
   touched from spawned domains, but (a) under a lock the traversal can
   see, and (b) behind an audited [@pslint.shared_ok] annotation.
   Neither write may be reported. *)

let lock = Mutex.create ()
let total = ref 0

let bump n =
  Mutex.lock lock;
  total := !total + n;
  Mutex.unlock lock

let seen : (int, bool) Hashtbl.t = Hashtbl.create 8

(* Single-writer by construction in the fixture's story — the
   annotation, not the code, is what licenses this one. *)
let[@pslint.shared_ok] note k = Hashtbl.replace seen k true

let run () =
  let d = Domain.spawn (fun () -> bump 1) in
  let e = Domain.spawn (fun () -> note 2) in
  Domain.join d;
  Domain.join e;
  !total
