(* Seeded violation: a module-level ref written from a spawned domain
   with no lock.  The race rule must flag the write in [bump] with the
   chain [<spawned lambda> -> bump]. *)

let total = ref 0

let bump n = total := !total + n

let run () =
  let d = Domain.spawn (fun () -> bump 1) in
  Domain.join d;
  !total
