(* The repaired shape of [Block_unguarded]: the same nonblocking root,
   but the blocking helper carries an audited [@pslint.blocking_ok]
   barrier, so nothing may be reported. *)

let[@pslint.blocking_ok] read_header ic = really_input_string ic 4

let[@pslint.nonblocking] pump ic = String.length (read_header ic)
