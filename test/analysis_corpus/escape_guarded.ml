(* The repaired shape of [Escape_unguarded]: the same raising helper,
   but the thread entry point contains the failure with a catch-all at
   the boundary, so nothing may be reported. *)

let parse s = int_of_string s

let run s =
  let t =
    Thread.create (fun () -> try ignore (parse s : int) with _ -> ()) ()
  in
  Thread.join t
