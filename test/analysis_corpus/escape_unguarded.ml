(* Seeded violation: a thread entry point calls a raising helper with
   no handler at the boundary.  The escape rule must flag the [Failure]
   from [int_of_string] in [parse] with the chain
   [<spawned lambda> -> parse]. *)

let parse s = int_of_string s

let run s =
  let t = Thread.create (fun () -> ignore (parse s : int)) () in
  Thread.join t
