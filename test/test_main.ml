(* Aggregate all suites into one alcotest binary: `dune runtest`. *)

let () =
  Alcotest.run "pslocal"
    (Test_util.suites @ Test_telemetry.suites @ Test_graph.suites
   @ Test_hypergraph.suites @ Test_local.suites @ Test_slocal.suites
   @ Test_maxis.suites @ Test_kernel.suites @ Test_cfc.suites @ Test_check.suites @ Test_core.suites
   @ Test_integration.suites @ Test_cache.suites @ Test_server.suites
   @ Test_scale.suites @ Test_shard.suites @ Test_analysis.suites)
