(* Tests for Ps_core — the paper's construction itself: triples, the
   conflict graph G_k, the Lemma 2.1 correspondences, the Theorem 1.1
   reduction, and end-to-end certification. *)

module H = Ps_hypergraph.Hypergraph
module Hgen = Ps_hypergraph.Hgen
module G = Ps_graph.Graph
module Triple = Ps_core.Triple
module Ix = Ps_core.Triple.Indexer
module Cg = Ps_core.Conflict_graph
module Corr = Ps_core.Correspondence
module Red = Ps_core.Reduction
module Cert = Ps_core.Certify
module Pipe = Ps_core.Pipeline
module Is = Ps_maxis.Independent_set
module Cf = Ps_cfc.Cf_coloring
module Mc = Ps_cfc.Multicolor
module Approx = Ps_maxis.Approx
module Rng = Ps_util.Rng

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let sample () = H.of_edges 5 [ [ 0; 1; 2 ]; [ 2; 3 ]; [ 3; 4; 0 ] ]

(* ------------------------------------------------------------------ *)
(* Triple indexer *)

let test_indexer_total () =
  let h = sample () in
  (* Σ|e| = 3 + 2 + 3 = 8 *)
  check "k=1" 8 (Ix.total (Ix.make h ~k:1));
  check "k=4" 32 (Ix.total (Ix.make h ~k:4));
  check "matches formula" (Cg.size_formula h ~k:4) (Ix.total (Ix.make h ~k:4))

let test_indexer_roundtrip () =
  let h = sample () in
  let ix = Ix.make h ~k:3 in
  for idx = 0 to Ix.total ix - 1 do
    let t = Ix.decode ix idx in
    check "roundtrip" idx (Ix.encode ix t);
    check_bool "decoded valid" true (Ix.mem ix t)
  done

let test_indexer_encode_rejects () =
  let h = sample () in
  let ix = Ix.make h ~k:2 in
  check_bool "vertex not in edge" true
    (try
       ignore (Ix.encode ix { Triple.edge = 0; vertex = 3; color = 0 });
       false
     with Invalid_argument _ -> true);
  check_bool "color out of range" true
    (try
       ignore (Ix.encode ix { Triple.edge = 0; vertex = 0; color = 2 });
       false
     with Invalid_argument _ -> true)

let test_indexer_triples_of () =
  let h = sample () in
  let ix = Ix.make h ~k:2 in
  check "edge 1 has |e|*k" 4 (List.length (Ix.triples_of_edge ix 1));
  check "vertex 0 has deg*k" 4 (List.length (Ix.triples_of_vertex ix 0));
  List.iter
    (fun (t : Triple.t) -> check "edge component" 1 t.Triple.edge)
    (Ix.triples_of_edge ix 1);
  List.iter
    (fun (t : Triple.t) -> check "vertex component" 0 t.Triple.vertex)
    (Ix.triples_of_vertex ix 0)

let test_indexer_iter_count () =
  let h = sample () in
  let ix = Ix.make h ~k:3 in
  let count = ref 0 in
  Ix.iter ix (fun _ -> incr count);
  check "iterates all" (Ix.total ix) !count

(* ------------------------------------------------------------------ *)
(* Conflict graph: materialization vs specification *)

let test_adjacent_families () =
  let h = sample () in
  let k = 2 in
  let t e vertex color = { Triple.edge = e; vertex; color } in
  (* E_vertex: same vertex, different colors, different edges *)
  check_bool "E_vertex" true (Cg.adjacent h ~k (t 0 0 0) (t 2 0 1));
  (* E_edge: same edge, any members/colors *)
  check_bool "E_edge" true (Cg.adjacent h ~k (t 0 0 0) (t 0 1 1));
  check_bool "E_edge same vertex diff color" true
    (Cg.adjacent h ~k (t 0 0 0) (t 0 0 1));
  (* E_color: same color, distinct vertices, {u,v} within one of the
     edges: v=0 and u=4 are both in e2 = {0,3,4} *)
  check_bool "E_color (u,v ⊆ g)" true (Cg.adjacent h ~k (t 0 0 0) (t 2 4 0));
  (* same vertex, same color, different edges: NOT adjacent (u ≠ v is
     required in E_color; Lemma 2.1(a) depends on it) *)
  check_bool "same vertex same color independent" false
    (Cg.adjacent h ~k (t 0 2 0) (t 1 2 0));
  (* non-adjacent: different vertices, different colors, different edges *)
  check_bool "independent pair" false (Cg.adjacent h ~k (t 0 1 0) (t 1 3 1));
  (* same color but vertices never share an edge: v=1 only in e0, u=4 only
     in e2, 1 ∉ e2 and 4 ∉ e0 *)
  check_bool "same color no shared edge" false
    (Cg.adjacent h ~k (t 0 1 0) (t 2 4 0));
  (* self adjacency is false *)
  check_bool "no self loop" false (Cg.adjacent h ~k (t 0 0 0) (t 0 0 0))

let test_build_matches_adjacent_oracle () =
  let h = sample () in
  List.iter
    (fun k ->
      let cg = Cg.build h ~k in
      let ix = cg.Cg.indexer in
      for i = 0 to Ix.total ix - 1 do
        for j = i + 1 to Ix.total ix - 1 do
          let spec = Cg.adjacent h ~k (Ix.decode ix i) (Ix.decode ix j) in
          check_bool "materialized = spec" spec (G.has_edge cg.Cg.graph i j)
        done
      done)
    [ 1; 2; 3 ]

let test_implicit_matches_materialized () =
  let rng = Rng.create 1 in
  let h = Hgen.almost_uniform_random rng ~n:10 ~m:6 ~k:3 ~eps:0.5 in
  let k = 2 in
  let cg = Cg.build h ~k in
  let ix = cg.Cg.indexer in
  for i = 0 to Ix.total ix - 1 do
    let implicit = ref [] in
    Cg.iter_neighbors_implicit h ix (Ix.decode ix i) (fun t ->
        implicit := Ix.encode ix t :: !implicit);
    let implicit = List.sort compare !implicit in
    let materialized = Array.to_list (G.neighbors cg.Cg.graph i) in
    Alcotest.(check (list int)) "neighborhoods equal" materialized implicit
  done

let test_edge_family_counts_consistent () =
  let h = sample () in
  List.iter
    (fun k ->
      let counts = Cg.edge_family_counts h ~k in
      let cg = Cg.build h ~k in
      check "union = materialized m" (G.n_edges cg.Cg.graph)
        counts.Cg.n_union;
      check_bool "families nonneg" true
        (counts.Cg.n_vertex_family >= 0
        && counts.Cg.n_edge_family >= 0
        && counts.Cg.n_color_family >= 0))
    [ 1; 2 ]

let test_edge_family_formula_edge_cliques () =
  (* For disjoint blocks no two edges share a vertex, so E_vertex has only
     intra-edge pairs and E_edge is exactly m * C(s*k, 2). *)
  let h = Hgen.disjoint_blocks ~blocks:3 ~size:2 in
  let k = 2 in
  let counts = Cg.edge_family_counts h ~k in
  check "edge cliques" (3 * (4 * 3 / 2)) counts.Cg.n_edge_family

let test_to_dot () =
  let h = H.of_edges 3 [ [ 0; 1 ]; [ 1; 2 ] ] in
  let dot = Cg.to_dot h ~k:2 in
  check_bool "dot header" true (String.length dot > 20);
  let count_sub needle =
    let n = String.length needle and total = ref 0 in
    for i = 0 to String.length dot - n do
      if String.sub dot i n = needle then incr total
    done;
    !total
  in
  (* one label per triple *)
  check "labels" (Ix.total (Ix.make h ~k:2)) (count_sub "label=\"(e");
  (* every family appears on this instance *)
  check_bool "E_vertex edges" true (count_sub "color=red" > 0);
  check_bool "E_edge edges" true (count_sub "color=blue" > 0);
  check_bool "E_color edges" true (count_sub "color=green" > 0);
  (* total drawn edges = |E(G_k)| *)
  let cg = Cg.build h ~k:2 in
  check "edge lines" (G.n_edges cg.Cg.graph) (count_sub " -- ")

let test_vertex_count_formula () =
  let rng = Rng.create 2 in
  let h = Hgen.uniform_random rng ~n:15 ~m:10 ~k:4 in
  let cg = Cg.build h ~k:3 in
  check "|V| = k Σ|e|" (3 * 4 * 10) (G.n_vertices cg.Cg.graph);
  check "matches size_formula" (Cg.size_formula h ~k:3)
    (G.n_vertices cg.Cg.graph)

let test_csr_builder_matches_reference () =
  let rng = Rng.create 40 in
  List.iter
    (fun h ->
      List.iter
        (fun k ->
          let reference = (Cg.build_reference h ~k).Cg.graph in
          check_bool "csr = reference" true
            (G.equal (Cg.build h ~k).Cg.graph reference);
          check_bool "csr domains=2 = reference" true
            (G.equal (Cg.build ~domains:2 h ~k).Cg.graph reference);
          check_bool "csr domains=3 = reference" true
            (G.equal (Cg.build ~domains:3 h ~k).Cg.graph reference))
        [ 1; 2; 3 ])
    [ sample ();
      H.of_edges 5 [];
      Hgen.uniform_random rng ~n:12 ~m:9 ~k:3;
      Hgen.sunflower ~n_petals:5 ~core:2 ~petal:2;
      Hgen.random_intervals rng ~n:20 ~m:12 ~min_len:2 ~max_len:6 ]

(* ------------------------------------------------------------------ *)
(* Structure-aware exact solver for G_k *)

module Egk = Ps_core.Exact_gk

let test_exact_gk_matches_generic () =
  let rng = Rng.create 30 in
  for _ = 1 to 6 do
    let h = Hgen.uniform_random rng ~n:8 ~m:5 ~k:3 in
    let k = 2 in
    let cg = Cg.build h ~k in
    let generic = Ps_maxis.Exact.independence_number cg.Cg.graph in
    let structured = Option.get (Egk.independence_number h ~k) in
    check "same alpha" generic structured;
    (* the returned set really is independent in the materialized graph *)
    let set = Option.get (Egk.maximum h ~k) in
    check_bool "independent" true (Is.is_independent cg.Cg.graph set)
  done

let test_exact_gk_alpha_equals_m_when_cf_colorable () =
  (* Lemma 2.1(a) maximality at a scale the generic solver can't touch:
     m = 40 edges, G_k with hundreds of vertices. *)
  let rng = Rng.create 31 in
  let h = Hgen.random_intervals rng ~n:48 ~m:40 ~min_len:2 ~max_len:8 in
  let f = Ps_cfc.Cf_greedy.ruler h in
  Ps_cfc.Cf_coloring.verify_exn h f;
  let k = max 1 (Cf.max_color f + 1) in
  check "alpha = m" (H.n_edges h)
    (Option.get (Egk.independence_number h ~k))

let test_exact_gk_solver_in_pipeline () =
  (* On a CF-k-colorable instance the exact solver finds alpha = m, so
     the reduction finishes in exactly one phase (and the solver, which
     is pinned to the full instance's G_k, is never asked about a
     restricted one). *)
  let rng = Rng.create 32 in
  let h = Hgen.random_intervals rng ~n:24 ~m:14 ~min_len:2 ~max_len:6 in
  let k = Pipe.choose_k Pipe.From_ruler h in
  let result = Pipe.solve ~k:(Pipe.Fixed k) ~solver:(Egk.solver h ~k) h in
  check_bool "certifies" true result.Pipe.certificate.Cert.all_ok;
  check "one phase" 1 result.Pipe.reduction.Red.total_phases

let test_exact_gk_budget () =
  let rng = Rng.create 33 in
  let h = Hgen.uniform_random rng ~n:20 ~m:15 ~k:4 in
  check_bool "tiny budget gives up" true
    (Egk.maximum ~budget:3 h ~k:2 = None)

(* ------------------------------------------------------------------ *)
(* Lemma 2.1 *)

let cf_coloring_of h =
  let f = Ps_cfc.Cf_greedy.conservative h in
  Cf.verify_exn h f;
  f

let test_lemma_a_size_equals_m () =
  (* A CF coloring induces an independent set of size exactly m. *)
  let rng = Rng.create 3 in
  List.iter
    (fun h ->
      let f = cf_coloring_of h in
      let k = max 1 (Cf.max_color f + 1) in
      let cg = Cg.build h ~k in
      let i_f = Corr.is_of_coloring h cg.Cg.indexer f in
      check "independent set size = m" (H.n_edges h) (Is.size i_f);
      check_bool "independent in G_k" true
        (Is.is_independent cg.Cg.graph i_f))
    [ sample ();
      Hgen.uniform_random rng ~n:12 ~m:8 ~k:3;
      Hgen.random_intervals rng ~n:20 ~m:10 ~min_len:2 ~max_len:6;
      Hgen.sunflower ~n_petals:4 ~core:2 ~petal:1 ]

let test_lemma_a_maximum () =
  (* No independent set of G_k can beat m: verified exactly on a small
     instance via branch and bound. *)
  let h = H.of_edges 4 [ [ 0; 1 ]; [ 1; 2 ]; [ 2; 3 ] ] in
  let f = cf_coloring_of h in
  let k = max 1 (Cf.max_color f + 1) in
  let cg = Cg.build h ~k in
  let alpha = Ps_maxis.Exact.independence_number cg.Cg.graph in
  check "alpha(G_k) = m" (H.n_edges h) alpha

let test_lemma_a_alpha_never_exceeds_m () =
  (* Even without a CF coloring premise, E_edge caps alpha at m. *)
  let rng = Rng.create 4 in
  for _ = 1 to 5 do
    let h = Hgen.uniform_random rng ~n:8 ~m:4 ~k:3 in
    let cg = Cg.build h ~k:2 in
    check_bool "alpha <= m" true
      (Ps_maxis.Exact.independence_number cg.Cg.graph <= H.n_edges h)
  done

let test_lemma_b_well_defined () =
  let rng = Rng.create 5 in
  let h = Hgen.uniform_random rng ~n:12 ~m:8 ~k:3 in
  let cg = Cg.build h ~k:3 in
  let is = Ps_maxis.Greedy.min_degree cg.Cg.graph in
  (* must not raise *)
  let f = Corr.coloring_of_is h cg.Cg.indexer is in
  check "coloring length" (H.n_vertices h) (Array.length f)

let test_lemma_b_happy_lower_bound () =
  let rng = Rng.create 6 in
  List.iter
    (fun h ->
      let cg = Cg.build h ~k:3 in
      List.iter
        (fun solver ->
          let is = Approx.solve_verified solver rng cg.Cg.graph in
          check_bool
            (solver.Approx.name ^ ": happy >= |I|")
            true
            (Corr.happy_at_least_lemma h cg.Cg.indexer is))
        (Approx.exact :: Approx.all_heuristics))
    [ sample (); Hgen.uniform_random rng ~n:10 ~m:5 ~k:3 ]

let test_lemma_b_happy_exactly_is_size () =
  (* The proof shows the happy count EQUALS |I| when every chosen triple's
     edge is distinct — which E_edge forces. Check equality. *)
  let rng = Rng.create 7 in
  let h = Hgen.uniform_random rng ~n:12 ~m:8 ~k:3 in
  let cg = Cg.build h ~k:2 in
  let is = Ps_maxis.Caro_wei.run_maximal rng cg.Cg.graph in
  let f = Corr.coloring_of_is h cg.Cg.indexer is in
  check "happy = |I|" (Is.size is) (Cf.count_happy h f)

let test_lemma_roundtrip () =
  (* f -> I_f -> f' : f' agrees with f on every witness vertex. *)
  let h = sample () in
  let f = cf_coloring_of h in
  let k = max 1 (Cf.max_color f + 1) in
  let cg = Cg.build h ~k in
  let i_f = Corr.is_of_coloring h cg.Cg.indexer f in
  let f' = Corr.coloring_of_is h cg.Cg.indexer i_f in
  Array.iteri
    (fun v c -> if c <> Cf.uncolored then check "agrees" f.(v) c)
    f';
  check_bool "roundtrip coloring still CF" true (Cf.is_conflict_free h f')

let test_coloring_of_dependent_set_raises () =
  (* Feeding a NON-independent set with two colors on one vertex must be
     rejected. *)
  let h = sample () in
  let ix = Ix.make h ~k:2 in
  let bad = Ps_util.Bitset.create (Ix.total ix) in
  Ps_util.Bitset.add bad
    (Ix.encode ix { Triple.edge = 0; vertex = 0; color = 0 });
  Ps_util.Bitset.add bad
    (Ix.encode ix { Triple.edge = 2; vertex = 0; color = 1 });
  check_bool "raises" true
    (try
       ignore (Corr.coloring_of_is h ix bad);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Theorem 1.1 reduction *)

let reduction_families rng =
  [ sample ();
    Hgen.uniform_random rng ~n:20 ~m:15 ~k:4;
    Hgen.almost_uniform_random rng ~n:25 ~m:20 ~k:3 ~eps:1.0;
    Hgen.random_intervals rng ~n:30 ~m:20 ~min_len:2 ~max_len:8;
    Hgen.sunflower ~n_petals:5 ~core:2 ~petal:2;
    Hgen.disjoint_blocks ~blocks:5 ~size:3 ]

let test_reduction_produces_cf_multicoloring () =
  let rng = Rng.create 8 in
  List.iter
    (fun h ->
      let result = Pipe.solve ~solver:Approx.greedy_min_degree h in
      check_bool "certificate" true result.Pipe.certificate.Cert.all_ok;
      check_bool "conflict free (direct check)" true
        (Mc.is_conflict_free h result.Pipe.reduction.Red.multicoloring))
    (reduction_families rng)

let test_reduction_all_solvers () =
  let rng = Rng.create 9 in
  let h = Hgen.uniform_random rng ~n:15 ~m:12 ~k:3 in
  List.iter
    (fun solver ->
      let result = Pipe.solve ~solver h in
      check_bool (solver.Approx.name ^ " certifies") true
        result.Pipe.certificate.Cert.all_ok)
    Approx.all_heuristics

let test_reduction_phase_records_consistent () =
  let rng = Rng.create 10 in
  let h = Hgen.uniform_random rng ~n:20 ~m:15 ~k:4 in
  let result = Pipe.solve ~solver:Approx.caro_wei h in
  let r = result.Pipe.reduction in
  check "phase count" r.Red.total_phases (List.length r.Red.phases);
  (* edges_before decreases by newly_happy *)
  let rec walk = function
    | (a : Red.phase_record) :: (b :: _ as rest) ->
        check "decrement" (a.Red.edges_before - a.Red.newly_happy)
          b.Red.edges_before;
        walk rest
    | [ last ] ->
        check "last phase clears" last.Red.edges_before last.Red.newly_happy
    | [] -> ()
  in
  walk r.Red.phases;
  List.iter
    (fun (p : Red.phase_record) ->
      check_bool "happy >= |I| (Lemma 2.1b)" true
        (p.Red.newly_happy >= p.Red.is_size);
      check_bool "|I| >= 1" true (p.Red.is_size >= 1))
    r.Red.phases

let test_reduction_color_budget () =
  let rng = Rng.create 11 in
  let h = Hgen.uniform_random rng ~n:20 ~m:12 ~k:4 in
  let result = Pipe.solve ~solver:Approx.greedy_min_degree h in
  let r = result.Pipe.reduction in
  check_bool "colors <= k * phases" true
    (r.Red.colors_used <= r.Red.k * r.Red.total_phases);
  (* every color is on the per-phase palettes *)
  Array.iter
    (List.iter (fun c ->
         check_bool "palette range" true
           (c >= 0 && c < r.Red.k * r.Red.total_phases)))
    r.Red.multicoloring

let test_reduction_single_phase_with_exact_solver () =
  (* An exact MaxIS (λ = 1) must finish interval instances in one phase:
     |E_2| <= (1 - 1/1)|E_1| = 0. *)
  let h = Hgen.all_intervals_of_length ~n:12 ~len:3 in
  let result = Pipe.solve ~k:Pipe.From_ruler ~solver:Approx.exact h in
  check "one phase" 1 result.Pipe.reduction.Red.total_phases

let test_reduction_empty_hypergraph () =
  let h = H.of_edges 5 [] in
  let result = Pipe.solve ~k:(Pipe.Fixed 1) ~solver:Approx.greedy_min_degree h in
  check "zero phases" 0 result.Pipe.reduction.Red.total_phases;
  check_bool "certifies" true result.Pipe.certificate.Cert.all_ok

let test_reduction_deterministic_given_seed () =
  let rng = Rng.create 12 in
  let h = Hgen.uniform_random rng ~n:15 ~m:10 ~k:3 in
  let a = Pipe.solve ~seed:5 ~solver:Approx.caro_wei h in
  let b = Pipe.solve ~seed:5 ~solver:Approx.caro_wei h in
  check "same phases" a.Pipe.reduction.Red.total_phases
    b.Pipe.reduction.Red.total_phases;
  check_bool "same multicoloring" true
    (a.Pipe.reduction.Red.multicoloring = b.Pipe.reduction.Red.multicoloring)

let test_reduction_rho_bound_holds () =
  (* phases <= λ_max ln m + 1 with the measured λ — Theorem 1.1's count. *)
  let rng = Rng.create 13 in
  List.iter
    (fun h ->
      let result = Pipe.solve ~solver:Approx.greedy_min_degree h in
      check_bool "within rho" true
        result.Pipe.certificate.Cert.phases_within_rho)
    (reduction_families rng)

let test_reduction_stalls_on_broken_solver () =
  (* A solver violating its contract (empty IS on a non-empty graph)
     must be caught by the Stalled guard, not loop forever. *)
  let broken =
    { Ps_maxis.Approx.name = "broken-empty";
      solve = (fun _ g -> Is.empty g) }
  in
  let h = sample () in
  check_bool "stalls" true
    (try
       ignore (Ps_core.Reduction.run ~presolve:`None ~solver:broken ~k:2 h);
       false
     with Ps_core.Reduction.Stalled 0 -> true);
  (* Under the default kernel presolve the same solver is rescued: the
     lift's vertex-addition repair turns the empty answer into a maximal
     set, so the run completes (the guard is about raw solvers). *)
  let r = Ps_core.Reduction.run ~solver:broken ~k:2 h in
  check_bool "kernel presolve repairs" true (r.Ps_core.Reduction.total_phases >= 1)

let test_reduction_with_degraded_solver_still_certifies () =
  (* Theorem 1.1 holds for ANY lambda: even a solver keeping 10% of a
     maximal IS drives the loop to a certified conflict-free coloring,
     just over more phases. *)
  let rng = Rng.create 22 in
  let h = Hgen.uniform_random rng ~n:20 ~m:18 ~k:4 in
  let solver = Approx.degrade ~keep:0.1 Approx.greedy_min_degree in
  let result = Pipe.solve ~solver h in
  check_bool "certifies" true result.Pipe.certificate.Cert.all_ok;
  check_bool "needs more phases than the full solver" true
    (result.Pipe.reduction.Red.total_phases
    >= (Pipe.solve ~solver:Approx.greedy_min_degree h)
         .Pipe.reduction.Red.total_phases)

(* ------------------------------------------------------------------ *)
(* Seed-behavior regression: the CSR builder and the bool-array edge
   pruning must not change what the reduction computes.  The expected
   numbers below were captured by running the pre-CSR (list-based)
   implementation on data/sunflower_12.hg with these exact parameters;
   any drift in the conflict graph or the phase loop shows up here. *)

let sunflower_file = "../data/sunflower_12.hg"

let phase_rows r =
  List.map
    (fun (p : Red.phase_record) ->
      [ p.Red.phase; p.Red.edges_before; p.Red.conflict_vertices;
        p.Red.conflict_edges; p.Red.is_size; p.Red.newly_happy ])
    r.Red.phases

let test_reduction_seed_behavior_sunflower () =
  let h = Ps_hypergraph.Hio.read_file sunflower_file in
  check "n" 39 (H.n_vertices h);
  check "m" 12 (H.n_edges h);
  (* Full-strength solver: a single phase clearing all 12 edges.  The
     pinned rows predate the kernelization front end, so these runs pin
     the raw solvers with [~presolve:`None]. *)
  let r =
    Red.run ~seed:0 ~presolve:`None ~solver:Approx.greedy_min_degree ~k:2 h
  in
  check "phases (greedy)" 1 r.Red.total_phases;
  check "colors (greedy)" 2 r.Red.colors_used;
  Alcotest.(check (list (list int)))
    "phase records (greedy)"
    [ [ 0; 12; 144; 4356; 12; 12 ] ]
    (phase_rows r);
  (* Degraded solver: the multi-phase trajectory, pinned number by number.
     [r] runs on the default [`Incremental] engine, so these rows double
     as the engine's regression pin: any drift in compaction renumbering
     or the fast happiness scan shows up against numbers captured from
     the original rebuild-every-phase implementation. *)
  let solver = Approx.degrade ~keep:0.3 Approx.greedy_min_degree in
  let r = Red.run ~seed:0 ~presolve:`None ~solver ~k:2 h in
  check "phases (degraded)" 4 r.Red.total_phases;
  check "colors (degraded)" 5 r.Red.colors_used;
  Alcotest.(check (list (list int)))
    "phase records (degraded)"
    [ [ 0; 12; 144; 4356; 4; 4 ];
      [ 1; 8; 96; 2040; 1; 1 ];
      [ 2; 7; 84; 1596; 1; 1 ];
      [ 3; 6; 72; 1206; 3; 6 ] ]
    (phase_rows r);
  (* The explicit rebuild engine must agree bit for bit. *)
  let r_rebuild = Red.run ~seed:0 ~presolve:`None ~engine:`Rebuild ~solver ~k:2 h in
  check_bool "engines agree (multicoloring)" true
    (r.Red.multicoloring = r_rebuild.Red.multicoloring);
  check_bool "engines agree (phase records)" true
    (r.Red.phases = r_rebuild.Red.phases)

(* ------------------------------------------------------------------ *)
(* Incremental engine: compaction must reproduce a fresh rebuild of the
   restricted hypergraph, graph and numbering included. *)

let test_incremental_compact_matches_rebuild () =
  let rng = Rng.create 33 in
  let h = Hgen.uniform_random rng ~n:18 ~m:14 ~k:3 in
  let k = 2 in
  let st = Cg.Incremental.create h ~k in
  check_bool "phase-0 graph = build" true
    (G.equal (Cg.Incremental.graph st) (Cg.build h ~k).Cg.graph);
  check "all alive" 14 (Cg.Incremental.n_alive_edges st);
  let alive = ref (List.init 14 (fun e -> e)) in
  List.iter
    (fun dead ->
      alive := List.filter (fun e -> not (List.mem e dead)) !alive;
      Cg.Incremental.retire_edges st dead;
      Cg.Incremental.compact st;
      check "alive count" (List.length !alive)
        (Cg.Incremental.n_alive_edges st);
      let hi, back = H.restrict_edges h !alive in
      let fresh = Cg.build hi ~k in
      check_bool "compacted graph = rebuilt graph" true
        (G.equal (Cg.Incremental.graph st) fresh.Cg.graph);
      (* Decode agrees with the fresh indexer modulo the local->global
         edge translation. *)
      for id = 0 to G.n_vertices fresh.Cg.graph - 1 do
        let t = Ix.decode fresh.Cg.indexer id in
        let t' = Cg.Incremental.decode st id in
        check "decode edge" back.(t.Triple.edge) t'.Triple.edge;
        check "decode vertex" t.Triple.vertex t'.Triple.vertex;
        check "decode color" t.Triple.color t'.Triple.color
      done)
    (* Second batch retires edge 7 twice: retirement is idempotent. *)
    [ [ 3 ]; [ 0; 7; 7 ]; [ 1; 2; 4 ]; [ 5; 13 ] ]

let test_incremental_retire_rejects_bad_edge () =
  let st = Cg.Incremental.create (sample ()) ~k:2 in
  check_bool "raises" true
    (try
       Cg.Incremental.retire_edges st [ 3 ];
       false
     with Invalid_argument _ -> true)

let test_incremental_compact_to_empty () =
  let h = sample () in
  let st = Cg.Incremental.create h ~k:2 in
  Cg.Incremental.retire_edges st [ 0; 1; 2 ];
  Cg.Incremental.compact st;
  check "no alive edges" 0 (Cg.Incremental.n_alive_edges st);
  check "empty graph" 0 (G.n_vertices (Cg.Incremental.graph st))

(* ------------------------------------------------------------------ *)
(* Ablation: reusing the same palette across phases must break CF. *)

let test_palette_reuse_ablation () =
  (* Replay a multi-phase run but fold all phases onto palette 0..k-1; the
     proof requires fresh palettes, and the collapsed coloring should stop
     being conflict-free on at least some instances. We assert the
     *mechanism*: collapsing never increases the number of distinct colors
     and the certified run always passes while a collapsed one may fail —
     concretely on the sunflower it does fail. *)
  let h = Hgen.sunflower ~n_petals:6 ~core:3 ~petal:1 in
  let result =
    Pipe.solve ~solver:Approx.greedy_adversarial ~k:Pipe.From_conservative h
  in
  let r = result.Pipe.reduction in
  if r.Red.total_phases > 1 then begin
    let collapsed = Mc.blank h in
    Array.iteri
      (fun v colors ->
        List.iter (fun c -> Mc.add_color collapsed v (c mod r.Red.k)) colors)
      r.Red.multicoloring;
    (* The original is CF; the collapsed version loses that here. *)
    check_bool "original CF" true (Mc.is_conflict_free h r.Red.multicoloring);
    check_bool "collapsed breaks" false
      (Mc.is_conflict_free h collapsed)
  end

(* ------------------------------------------------------------------ *)
(* Simulating G_k in the LOCAL model *)

module Sim = Ps_core.Simulate

let test_simulate_matches_materialized () =
  let rng = Rng.create 14 in
  let h = Hgen.uniform_random rng ~n:12 ~m:8 ~k:3 in
  let k = 2 in
  let cg = Cg.build h ~k in
  let direct_flags, direct_stats = Ps_local.Luby.run ~seed:4 cg.Cg.graph in
  let sim = Sim.luby_mis ~seed:4 h ~k in
  Alcotest.(check (list int)) "same independent set"
    (Is.to_list (Is.of_indicator direct_flags))
    (Is.to_list sim.Sim.independent_set);
  check "same virtual rounds" direct_stats.Ps_local.Network.rounds
    sim.Sim.virtual_rounds;
  check "host dilation" (Sim.host_dilation * sim.Sim.virtual_rounds)
    sim.Sim.host_rounds

let test_simulate_result_is_mis_of_gk () =
  let rng = Rng.create 15 in
  let h = Hgen.random_intervals rng ~n:16 ~m:8 ~min_len:2 ~max_len:5 in
  let k = 2 in
  let cg = Cg.build h ~k in
  let sim = Sim.luby_mis ~seed:1 h ~k in
  check_bool "independent in G_k" true
    (Is.is_independent cg.Cg.graph sim.Sim.independent_set);
  check_bool "maximal in G_k" true
    (Is.is_maximal cg.Cg.graph sim.Sim.independent_set)

let test_simulate_feeds_lemma_b () =
  (* The LOCAL-computed IS plugs into the Lemma 2.1(b) correspondence
     like any other: happy edges >= |I|. *)
  let rng = Rng.create 16 in
  let h = Hgen.uniform_random rng ~n:14 ~m:9 ~k:3 in
  let k = 2 in
  let ix = Ix.make h ~k in
  let sim = Sim.luby_mis ~seed:2 h ~k in
  check_bool "lemma b" true
    (Corr.happy_at_least_lemma h ix sim.Sim.independent_set)

let test_simulate_local_solver_in_pipeline () =
  (* The full Theorem 1.1 loop with a message-passing MaxIS oracle. *)
  let rng = Rng.create 17 in
  let h = Hgen.uniform_random rng ~n:15 ~m:10 ~k:3 in
  let result = Pipe.solve ~solver:(Sim.local_solver ~seed:5) h in
  check_bool "certifies" true result.Pipe.certificate.Cert.all_ok

let test_simulate_neighbors_oracle_sorted () =
  let rng = Rng.create 18 in
  let h = Hgen.uniform_random rng ~n:10 ~m:5 ~k:3 in
  let ix = Ix.make h ~k:2 in
  for i = 0 to Ix.total ix - 1 do
    let ns = Sim.neighbors_oracle h ix i in
    Array.iteri
      (fun j u -> if j > 0 then check_bool "sorted" true (u > ns.(j - 1)))
      ns
  done

(* ------------------------------------------------------------------ *)
(* Message-passing reduction *)

module RL = Ps_core.Reduction_local

let test_reduction_local_certifies () =
  let rng = Rng.create 19 in
  List.iter
    (fun h ->
      let k = Pipe.choose_k Pipe.From_conservative h in
      let result = RL.run ~k h in
      let cert = Cert.certify result.RL.reduction in
      check_bool "certificate" true cert.Cert.all_ok;
      check_bool "conflict free" true
        (Mc.is_conflict_free h result.RL.reduction.Red.multicoloring))
    [ sample ();
      Hgen.uniform_random rng ~n:14 ~m:10 ~k:3;
      Hgen.random_intervals rng ~n:20 ~m:12 ~min_len:2 ~max_len:6 ]

let test_reduction_local_cost_accounting () =
  let rng = Rng.create 20 in
  let h = Hgen.uniform_random rng ~n:14 ~m:10 ~k:3 in
  let k = 2 in
  let result = RL.run ~k h in
  let c = result.RL.cost in
  check "phase count consistent" result.RL.reduction.Red.total_phases
    c.RL.phases;
  check "host dilation + coordination"
    ((Ps_core.Simulate.host_dilation * c.RL.virtual_rounds) + (2 * c.RL.phases))
    c.RL.host_rounds;
  check_bool "messages counted" true (c.RL.messages > 0)

let test_reduction_local_deterministic () =
  let rng = Rng.create 21 in
  let h = Hgen.uniform_random rng ~n:12 ~m:8 ~k:3 in
  let a = RL.run ~seed:3 ~k:2 h in
  let b = RL.run ~seed:3 ~k:2 h in
  check_bool "same multicoloring" true
    (a.RL.reduction.Red.multicoloring = b.RL.reduction.Red.multicoloring);
  check "same rounds" a.RL.cost.RL.virtual_rounds b.RL.cost.RL.virtual_rounds

let test_reduction_local_empty () =
  let h = H.of_edges 4 [] in
  let result = RL.run ~k:1 h in
  check "zero phases" 0 result.RL.cost.RL.phases;
  check "zero rounds" 0 result.RL.cost.RL.host_rounds

let test_reduction_local_engines_agree () =
  let rng = Rng.create 23 in
  let h = Hgen.uniform_random rng ~n:14 ~m:10 ~k:3 in
  let a = RL.run ~seed:3 ~engine:`Rebuild ~k:2 h in
  let b = RL.run ~seed:3 ~engine:`Incremental ~k:2 h in
  check_bool "same multicoloring" true
    (a.RL.reduction.Red.multicoloring = b.RL.reduction.Red.multicoloring);
  check_bool "same phase records" true
    (a.RL.reduction.Red.phases = b.RL.reduction.Red.phases);
  check "same rounds" a.RL.cost.RL.virtual_rounds b.RL.cost.RL.virtual_rounds

(* ------------------------------------------------------------------ *)
(* Pipeline k choices *)

let test_choose_k () =
  let h = sample () in
  check "fixed" 7 (Pipe.choose_k (Pipe.Fixed 7) h);
  check_bool "conservative >= 1" true
    (Pipe.choose_k Pipe.From_conservative h >= 1);
  let intervals = Hgen.all_intervals_of_length ~n:16 ~len:4 in
  check "ruler k" 5 (Pipe.choose_k Pipe.From_ruler intervals)

let test_choose_k_ruler_rejects_non_interval () =
  let h = H.of_edges 3 [ [ 0; 2 ] ] in
  check_bool "raises" true
    (try
       ignore (Pipe.choose_k Pipe.From_ruler h);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* qcheck properties: the lemma and the theorem on random instances *)

let arbitrary_hg =
  QCheck.make
    ~print:(fun (seed, n, m, k) ->
      Printf.sprintf "hg seed=%d n=%d m=%d k=%d" seed n m k)
    QCheck.Gen.(
      quad (int_bound 1000) (int_range 3 15) (int_range 1 10) (int_range 1 3))

let hg_of (seed, n, m, k) =
  Hgen.almost_uniform_random (Rng.create seed) ~n ~m ~k:(min k n) ~eps:1.0

let prop_lemma_a =
  QCheck.Test.make ~count:60
    ~name:"Lemma 2.1(a): CF coloring gives independent set of size m"
    arbitrary_hg (fun params ->
      let h = hg_of params in
      let f = Ps_cfc.Cf_greedy.conservative h in
      let k = max 1 (Cf.max_color f + 1) in
      let cg = Cg.build h ~k in
      let i_f = Corr.is_of_coloring h cg.Cg.indexer f in
      Is.is_independent cg.Cg.graph i_f && Is.size i_f = H.n_edges h)

let prop_lemma_b =
  QCheck.Test.make ~count:60
    ~name:"Lemma 2.1(b): any IS gives well-defined coloring, happy >= |I|"
    arbitrary_hg (fun params ->
      let h = hg_of params in
      let cg = Cg.build h ~k:2 in
      let rng = Rng.create (Hashtbl.hash params) in
      let is = Ps_maxis.Caro_wei.run_maximal rng cg.Cg.graph in
      Corr.happy_at_least_lemma h cg.Cg.indexer is)

let prop_theorem_11 =
  QCheck.Test.make ~count:40
    ~name:"Theorem 1.1 pipeline always certifies" arbitrary_hg
    (fun params ->
      let h = hg_of params in
      let result =
        Pipe.solve_unchecked ~solver:Approx.greedy_min_degree h
      in
      result.Pipe.certificate.Cert.all_ok)

let prop_implicit_oracle_sound =
  QCheck.Test.make ~count:20
    ~name:"implicit adjacency oracle = materialized graph"
    arbitrary_hg (fun params ->
      let h = hg_of params in
      let k = 2 in
      let cg = Cg.build h ~k in
      let ix = cg.Cg.indexer in
      let ok = ref true in
      for i = 0 to Ix.total ix - 1 do
        let implicit = ref [] in
        Cg.iter_neighbors_implicit h ix (Ix.decode ix i) (fun t ->
            implicit := Ix.encode ix t :: !implicit);
        if List.sort compare !implicit
           <> Array.to_list (G.neighbors cg.Cg.graph i)
        then ok := false
      done;
      !ok)

let prop_csr_build_matches_reference =
  QCheck.Test.make ~count:60
    ~name:"CSR build (domains 1 and 2) = build_reference"
    arbitrary_hg (fun params ->
      let h = hg_of params in
      let _, _, _, k = params in
      let k = min k (max 1 (H.n_vertices h)) in
      let oracle = (Cg.build_reference h ~k).Cg.graph in
      G.equal (Cg.build h ~k).Cg.graph oracle
      && G.equal (Cg.build ~domains:2 h ~k).Cg.graph oracle)

let prop_engines_bit_identical =
  QCheck.Test.make ~count:40
    ~name:
      "engine `Incremental = `Rebuild: multicoloring, phases, audit \
       (domains 1 and 2)"
    arbitrary_hg
    (fun params ->
      let h = hg_of params in
      let k = 2 in
      (* A degraded solver forces a multi-phase trajectory, so several
         compactions actually happen and stay comparable. *)
      let solver = Approx.degrade ~keep:0.4 Approx.greedy_min_degree in
      let base = Red.run ~seed:7 ~engine:`Rebuild ~domains:1 ~solver ~k h in
      let base_diag = Ps_core.Certify.diagnostics base in
      List.for_all
        (fun r ->
          r.Red.multicoloring = base.Red.multicoloring
          && r.Red.phases = base.Red.phases
          && r.Red.colors_used = base.Red.colors_used
          && Ps_core.Certify.diagnostics r = base_diag)
        [ Red.run ~seed:7 ~engine:`Incremental ~domains:1 ~solver ~k h;
          Red.run ~seed:7 ~engine:`Incremental ~domains:2 ~solver ~k h;
          Red.run ~seed:7 ~engine:`Rebuild ~domains:2 ~solver ~k h ])

let props =
  List.map QCheck_alcotest.to_alcotest
    [ prop_lemma_a; prop_lemma_b; prop_theorem_11; prop_implicit_oracle_sound;
      prop_csr_build_matches_reference; prop_engines_bit_identical ]

let suites =
  [ ( "core.triple",
      [ Alcotest.test_case "total" `Quick test_indexer_total;
        Alcotest.test_case "roundtrip" `Quick test_indexer_roundtrip;
        Alcotest.test_case "encode rejects" `Quick
          test_indexer_encode_rejects;
        Alcotest.test_case "triples_of" `Quick test_indexer_triples_of;
        Alcotest.test_case "iter count" `Quick test_indexer_iter_count ] );
    ( "core.conflict_graph",
      [ Alcotest.test_case "edge families" `Quick test_adjacent_families;
        Alcotest.test_case "build = spec" `Quick
          test_build_matches_adjacent_oracle;
        Alcotest.test_case "implicit = materialized" `Quick
          test_implicit_matches_materialized;
        Alcotest.test_case "family counts" `Quick
          test_edge_family_counts_consistent;
        Alcotest.test_case "edge clique formula" `Quick
          test_edge_family_formula_edge_cliques;
        Alcotest.test_case "dot export" `Quick test_to_dot;
        Alcotest.test_case "vertex count formula" `Quick
          test_vertex_count_formula;
        Alcotest.test_case "CSR = reference" `Quick
          test_csr_builder_matches_reference ] );
    ( "core.exact_gk",
      [ Alcotest.test_case "matches generic" `Quick
          test_exact_gk_matches_generic;
        Alcotest.test_case "alpha = m at scale" `Quick
          test_exact_gk_alpha_equals_m_when_cf_colorable;
        Alcotest.test_case "solver in pipeline" `Quick
          test_exact_gk_solver_in_pipeline;
        Alcotest.test_case "budget" `Quick test_exact_gk_budget ] );
    ( "core.lemma21",
      [ Alcotest.test_case "(a) size = m" `Quick test_lemma_a_size_equals_m;
        Alcotest.test_case "(a) maximum" `Quick test_lemma_a_maximum;
        Alcotest.test_case "(a) alpha <= m always" `Quick
          test_lemma_a_alpha_never_exceeds_m;
        Alcotest.test_case "(b) well-defined" `Quick
          test_lemma_b_well_defined;
        Alcotest.test_case "(b) happy >= |I|" `Quick
          test_lemma_b_happy_lower_bound;
        Alcotest.test_case "(b) happy = |I|" `Quick
          test_lemma_b_happy_exactly_is_size;
        Alcotest.test_case "roundtrip" `Quick test_lemma_roundtrip;
        Alcotest.test_case "dependent set rejected" `Quick
          test_coloring_of_dependent_set_raises ] );
    ( "core.reduction",
      [ Alcotest.test_case "CF multicoloring" `Quick
          test_reduction_produces_cf_multicoloring;
        Alcotest.test_case "all solvers" `Quick test_reduction_all_solvers;
        Alcotest.test_case "phase records" `Quick
          test_reduction_phase_records_consistent;
        Alcotest.test_case "color budget" `Quick test_reduction_color_budget;
        Alcotest.test_case "exact solver single phase" `Quick
          test_reduction_single_phase_with_exact_solver;
        Alcotest.test_case "empty hypergraph" `Quick
          test_reduction_empty_hypergraph;
        Alcotest.test_case "deterministic" `Quick
          test_reduction_deterministic_given_seed;
        Alcotest.test_case "rho bound" `Quick test_reduction_rho_bound_holds;
        Alcotest.test_case "degraded solver" `Quick
          test_reduction_with_degraded_solver_still_certifies;
        Alcotest.test_case "broken solver stalls" `Quick
          test_reduction_stalls_on_broken_solver;
        Alcotest.test_case "seed behavior sunflower_12" `Quick
          test_reduction_seed_behavior_sunflower;
        Alcotest.test_case "palette reuse ablation" `Quick
          test_palette_reuse_ablation ] );
    ( "core.incremental",
      [ Alcotest.test_case "compact = rebuild" `Quick
          test_incremental_compact_matches_rebuild;
        Alcotest.test_case "retire rejects bad edge" `Quick
          test_incremental_retire_rejects_bad_edge;
        Alcotest.test_case "compact to empty" `Quick
          test_incremental_compact_to_empty ] );
    ( "core.simulate",
      [ Alcotest.test_case "matches materialized" `Quick
          test_simulate_matches_materialized;
        Alcotest.test_case "MIS of G_k" `Quick
          test_simulate_result_is_mis_of_gk;
        Alcotest.test_case "feeds Lemma 2.1(b)" `Quick
          test_simulate_feeds_lemma_b;
        Alcotest.test_case "local solver in pipeline" `Quick
          test_simulate_local_solver_in_pipeline;
        Alcotest.test_case "oracle sorted" `Quick
          test_simulate_neighbors_oracle_sorted ] );
    ( "core.reduction_local",
      [ Alcotest.test_case "certifies" `Quick test_reduction_local_certifies;
        Alcotest.test_case "cost accounting" `Quick
          test_reduction_local_cost_accounting;
        Alcotest.test_case "deterministic" `Quick
          test_reduction_local_deterministic;
        Alcotest.test_case "empty" `Quick test_reduction_local_empty;
        Alcotest.test_case "engines agree" `Quick
          test_reduction_local_engines_agree ] );
    ( "core.pipeline",
      [ Alcotest.test_case "choose_k" `Quick test_choose_k;
        Alcotest.test_case "ruler rejects non-interval" `Quick
          test_choose_k_ruler_rejects_non_interval ] );
    ("core.properties", props) ]
